/**
 * Extension experiment: heterogeneous processor classes sharing one
 * snooping bus. The paper's model assumes statistically identical
 * processors; the multi-class solver relaxes that, answering design
 * questions like "what happens to the compute cluster when I add
 * I/O processors with poor locality?".
 */

#include "common.hh"
#include "mva/multiclass.hh"

namespace snoop::bench {
namespace {

DerivedInputs
inputsFor(SharingLevel level, const char *mods, double tau)
{
    WorkloadParams wl = presets::appendixA(level);
    wl.tau = tau;
    return DerivedInputs::compute(wl,
                                  ProtocolConfig::fromModString(mods));
}

void
report()
{
    banner("extension: heterogeneous processor classes");

    // Scenario: 8 compute processors (tau 2.5, 5% sharing) joined by
    // k I/O processors with poor locality (20% sharing, tau 1.0).
    std::printf("8 compute processors (5%% sharing, tau 2.5) plus k "
                "I/O processors (20%% sharing, tau 1.0), Write-Once:\n\n");
    auto compute = inputsFor(SharingLevel::FivePercent, "", 2.5);
    auto io = inputsFor(SharingLevel::TwentyPercent, "", 1.0);

    Table t({"I/O procs", "compute speedup", "I/O speedup", "U_bus",
             "compute R"});
    for (unsigned k : {0u, 1u, 2u, 4u, 8u}) {
        std::vector<ProcessorClass> classes = {{"compute", 8, compute}};
        if (k > 0)
            classes.push_back({"io", k, io});
        auto r = solveMulticlass(
            classes, {.onNonConvergence = NonConvergencePolicy::Warn});
        t.addRow({strprintf("%u", k),
                  formatDouble(r.classes[0].speedup, 2),
                  k ? formatDouble(r.classes[1].speedup, 2)
                    : std::string("-"),
                  formatPercent(r.busUtil, 1),
                  formatDouble(r.classes[0].responseTime, 2)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\neach I/O processor added costs the compute class "
                "speedup (its requests lengthen the shared bus queue) "
                "- quantified in microseconds per design point.\n\n");

    // Scenario: phased upgrade - migrating processors from Write-Once
    // to Dragon one group at a time on a 16-processor machine.
    std::printf("phased protocol upgrade: 16 processors split between "
                "Write-Once and Dragon (5%% sharing):\n\n");
    auto wo = inputsFor(SharingLevel::FivePercent, "", 2.5);
    auto dragon = inputsFor(SharingLevel::FivePercent, "1234", 2.5);
    Table u({"Dragon procs", "total speedup", "WO per-proc",
             "Dragon per-proc"});
    for (unsigned k : {0u, 4u, 8u, 12u, 16u}) {
        std::vector<ProcessorClass> classes;
        if (k < 16)
            classes.push_back({"wo", 16 - k, wo});
        if (k > 0)
            classes.push_back({"dragon", k, dragon});
        auto r = solveMulticlass(
            classes, {.onNonConvergence = NonConvergencePolicy::Warn});
        double wo_pp = (k < 16)
            ? r.classes[0].speedup / static_cast<double>(16 - k) : 0.0;
        double dr_pp = (k > 0)
            ? r.classes[classes.size() - 1].speedup /
                static_cast<double>(k)
            : 0.0;
        u.addRow({strprintf("%u", k),
                  formatDouble(r.totalSpeedup, 2),
                  (k < 16) ? formatDouble(wo_pp, 3) : std::string("-"),
                  (k > 0) ? formatDouble(dr_pp, 3) : std::string("-")});
    }
    std::fputs(u.render().c_str(), stdout);
}

void
BM_Multiclass_Solve(benchmark::State &state)
{
    auto compute = inputsFor(SharingLevel::FivePercent, "", 2.5);
    auto io = inputsFor(SharingLevel::TwentyPercent, "", 1.0);
    std::vector<ProcessorClass> classes = {{"compute", 8, compute},
                                           {"io", 4, io}};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            solveMulticlass(classes, {.onNonConvergence =
                NonConvergencePolicy::Warn}).totalSpeedup);
}
BENCHMARK(BM_Multiclass_Solve);

} // namespace
} // namespace snoop::bench

SNOOP_BENCH_MAIN(snoop::bench::report)
