/**
 * Experiment E4: regenerate Figure 4.1, the speedup-vs-N curves -
 * Write-Once at 1/5/20% sharing, enhancement 1 at 1/5/20%, and
 * enhancements 1+4 at 5% (the paper draws only the 5% curve because
 * the three sharing levels nearly coincide for that protocol).
 */

#include <vector>

#include "common.hh"
#include "util/chart.hh"

namespace snoop::bench {
namespace {

const std::vector<unsigned> kCurveNs = {1, 2,  4,  6,  8, 10,
                                        12, 14, 16, 18, 20};

struct Series
{
    const char *label;
    const char *mods;
    SharingLevel level;
};

const Series kSeries[] = {
    {"WO 1%", "", SharingLevel::OnePercent},
    {"WO 5%", "", SharingLevel::FivePercent},
    {"WO 20%", "", SharingLevel::TwentyPercent},
    {"M1 1%", "1", SharingLevel::OnePercent},
    {"M1 5%", "1", SharingLevel::FivePercent},
    {"M1 20%", "1", SharingLevel::TwentyPercent},
    {"M1+4 5%", "14", SharingLevel::FivePercent},
};

void
report()
{
    banner("Figure 4.1: mean value analysis performance results");
    std::printf("speedup vs number of processors, one column per "
                "curve (CSV-friendly; plot N on the x-axis).\n\n");

    MvaSolver solver({.onNonConvergence = NonConvergencePolicy::Warn});
    std::vector<std::vector<double>> columns;
    for (const auto &s : kSeries) {
        auto inputs = DerivedInputs::compute(
            presets::appendixA(s.level),
            ProtocolConfig::fromModString(s.mods));
        std::vector<double> col;
        for (unsigned n : kCurveNs)
            col.push_back(solver.solve(inputs, n).speedup);
        columns.push_back(std::move(col));
    }

    std::vector<std::string> headers = {"N"};
    for (const auto &s : kSeries)
        headers.push_back(s.label);
    Table t(headers);
    for (size_t i = 0; i < kCurveNs.size(); ++i) {
        std::vector<std::string> row = {strprintf("%u", kCurveNs[i])};
        for (const auto &col : columns)
            row.push_back(formatDouble(col[i], 2));
        t.addRow(row);
    }
    std::fputs(t.render().c_str(), stdout);

    // Draw the figure.
    std::vector<ChartSeries> chart;
    const char markers[] = {'o', 'x', '+', 'O', 'X', '#', '*'};
    std::vector<double> xs(kCurveNs.begin(), kCurveNs.end());
    for (size_t i = 0; i < std::size(kSeries); ++i) {
        ChartSeries s;
        s.label = kSeries[i].label;
        s.marker = markers[i];
        s.x = xs;
        s.y = columns[i];
        chart.push_back(std::move(s));
    }
    ChartOptions opt;
    opt.xLabel = "number of processors";
    opt.yLabel = "speedup";
    opt.height = 22;
    opt.width = 66;
    std::printf("\n%s", renderChart(chart, opt).c_str());

    // The figure's qualitative content, checked programmatically:
    std::printf("\nfigure shape checks:\n");
    auto at = [&](int series, unsigned n) {
        for (size_t i = 0; i < kCurveNs.size(); ++i)
            if (kCurveNs[i] == n)
                return columns[series][i];
        return 0.0;
    };
    std::printf("  M1 above WO at every sharing level (N=20): "
                "%.2f>%.2f, %.2f>%.2f, %.2f>%.2f\n",
                at(3, 20), at(0, 20), at(4, 20), at(1, 20), at(5, 20),
                at(2, 20));
    std::printf("  M1+4 (5%%) tops every curve at N=20: %.2f\n",
                at(6, 20));
    std::printf("  WO curves order by sharing (1%% > 5%% > 20%% at "
                "N=20): %.2f > %.2f > %.2f\n",
                at(0, 20), at(1, 20), at(2, 20));
}

void
BM_Fig41_AllCurves(benchmark::State &state)
{
    MvaSolver solver({.onNonConvergence = NonConvergencePolicy::Warn});
    for (auto _ : state) {
        double acc = 0.0;
        for (const auto &s : kSeries) {
            auto inputs = DerivedInputs::compute(
                presets::appendixA(s.level),
                ProtocolConfig::fromModString(s.mods));
            for (unsigned n : kCurveNs)
                acc += solver.solve(inputs, n).speedup;
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_Fig41_AllCurves);

} // namespace
} // namespace snoop::bench

SNOOP_BENCH_MAIN(snoop::bench::report)
