/** Unit tests for the observe metrics registry. */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "observe/metrics.hh"
#include "observe/trace.hh"

namespace snoop {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class MetricsTest : public testing::Test
{
  protected:
    void SetUp() override { observeReset(); }
    void TearDown() override { observeReset(); }
};

TEST_F(MetricsTest, DisabledRegistryRecordsNothing)
{
    ASSERT_FALSE(metrics().enabled());
    metrics().add("fixed_point.solves");
    metrics().set("gauge", 3.0);
    metrics().recordTime("timer_us", 12.5);
    EXPECT_TRUE(metrics().snapshot().empty());
}

TEST_F(MetricsTest, FreeHelpersRespectDisabledState)
{
    metricAdd("a");
    metricSet("b", 1.0);
    {
        ScopedMetricTimer t("c_us");
    }
    EXPECT_TRUE(metrics().snapshot().empty());
}

TEST_F(MetricsTest, CounterAccumulatesCountAndTotal)
{
    metrics().setEnabled(true);
    metrics().add("solves");
    metrics().add("solves", 4.0);
    auto snap = metrics().snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].name, "solves");
    EXPECT_EQ(snap[0].kind, 'c');
    EXPECT_EQ(snap[0].count, 2u);
    EXPECT_DOUBLE_EQ(snap[0].total, 5.0);
}

TEST_F(MetricsTest, GaugeKeepsLastValue)
{
    metrics().setEnabled(true);
    metrics().set("jobs", 2.0);
    metrics().set("jobs", 8.0);
    auto snap = metrics().snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].kind, 'g');
    EXPECT_DOUBLE_EQ(snap[0].total, 8.0);
}

TEST_F(MetricsTest, TimerAccumulatesDurations)
{
    metrics().setEnabled(true);
    metrics().recordTime("solve_us", 10.0);
    metrics().recordTime("solve_us", 30.0);
    auto snap = metrics().snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].kind, 't');
    EXPECT_EQ(snap[0].count, 2u);
    EXPECT_DOUBLE_EQ(snap[0].total, 40.0);
}

TEST_F(MetricsTest, ScopedTimerLatchesEnabledAtConstruction)
{
    metrics().setEnabled(true);
    {
        ScopedMetricTimer t("span_us");
    }
    auto snap = metrics().snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].name, "span_us");
    EXPECT_GE(snap[0].total, 0.0);

    // A timer constructed while disabled records nothing even if the
    // registry is enabled before it destructs.
    metrics().reset();
    metrics().setEnabled(false);
    {
        ScopedMetricTimer t("late_us");
        metrics().setEnabled(true);
    }
    EXPECT_TRUE(metrics().snapshot().empty());
}

TEST_F(MetricsTest, WriteCsvEmitsSortedRows)
{
    metrics().setEnabled(true);
    metrics().add("b.counter", 2.0);
    metrics().set("a.gauge", 7.0);
    std::string path = testing::TempDir() + "snoop_metrics_test.csv";
    ASSERT_TRUE(static_cast<bool>(metrics().writeCsv(path)));
    std::string text = slurp(path);
    std::remove(path.c_str());
    EXPECT_NE(text.find("kind,name,count,total,mean"),
              std::string::npos);
    // std::map ordering: a.gauge before b.counter
    EXPECT_LT(text.find("a.gauge"), text.find("b.counter"));
    EXPECT_NE(text.find("g,a.gauge,1,7,7"), std::string::npos);
}

TEST_F(MetricsTest, SummaryMentionsEachKind)
{
    metrics().setEnabled(true);
    metrics().add("c");
    metrics().set("g", 1.0);
    metrics().recordTime("t_us", 5.0);
    std::string s = metrics().summary();
    EXPECT_NE(s.find("counter"), std::string::npos);
    EXPECT_NE(s.find("gauge"), std::string::npos);
    EXPECT_NE(s.find("timer"), std::string::npos);
}

} // namespace
} // namespace snoop
