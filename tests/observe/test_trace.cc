/**
 * Tests for the solver trace layer: the determinism contract (the
 * recorded event set is bit-identical at any SNOOP_JOBS), level
 * filtering, zero recording when disabled, and the Chrome trace_event
 * JSON export.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/sweep.hh"
#include "observe/trace.hh"
#include "util/parallel.hh"

namespace snoop {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

SweepSpec
basicSpec()
{
    SweepSpec spec;
    spec.base = presets::appendixA(SharingLevel::FivePercent);
    spec.paramName = "h_sw";
    spec.set = findParamSetter("h_sw");
    spec.values = {0.2, 0.5, 0.8};
    spec.protocols = {ProtocolConfig::writeOnce(),
                      *findProtocol("Illinois")};
    spec.n = 10;
    return spec;
}

/** The sorted identity tuples of a traced runSweep at @p jobs. */
std::vector<std::string>
tracedSweepIdentities(TraceLevel level, unsigned jobs)
{
    observeReset();
    setTrace(level);
    setParallelJobs(jobs);
    runSweep(basicSpec());
    setParallelJobs(0);
    std::vector<std::string> ids;
    for (const auto &e : snapshotTraceEvents())
        ids.push_back(e.identity());
    observeReset();
    return ids;
}

bool
containsName(const std::vector<std::string> &ids, const std::string &name)
{
    return std::any_of(ids.begin(), ids.end(), [&](const std::string &s) {
        return s.find(name) != std::string::npos;
    });
}

class TraceTest : public testing::Test
{
  protected:
    void SetUp() override { observeReset(); }
    void TearDown() override
    {
        setParallelJobs(0);
        observeReset();
    }
};

TEST_F(TraceTest, DisabledRecordsNothing)
{
    ASSERT_FALSE(traceEnabled(TraceLevel::Phase));
    runSweep(basicSpec());
    traceInstant(TraceLevel::Iteration, "ignored", 0);
    {
        TraceSpan span(TraceLevel::Phase, "ignored", 0);
        EXPECT_FALSE(span.active());
    }
    EXPECT_TRUE(snapshotTraceEvents().empty());
    EXPECT_EQ(droppedTraceEvents(), 0u);
}

TEST_F(TraceTest, SweepEmitsTheExpectedEventFamilies)
{
    auto ids = tracedSweepIdentities(TraceLevel::Iteration, 1);
    ASSERT_FALSE(ids.empty());
    EXPECT_TRUE(containsName(ids, "sweep.run"));
    EXPECT_TRUE(containsName(ids, "sweep.cell"));
    EXPECT_TRUE(containsName(ids, "analyze"));
    EXPECT_TRUE(containsName(ids, "mva.solve"));
    EXPECT_TRUE(containsName(ids, "mva.attempt"));
    EXPECT_TRUE(containsName(ids, "mva.iteration"));
    EXPECT_TRUE(containsName(ids, "parallel.for"));
}

TEST_F(TraceTest, PhaseLevelDropsPerIterationInstants)
{
    auto ids = tracedSweepIdentities(TraceLevel::Phase, 1);
    ASSERT_FALSE(ids.empty());
    EXPECT_TRUE(containsName(ids, "sweep.cell"));
    EXPECT_TRUE(containsName(ids, "mva.attempt"));
    EXPECT_FALSE(containsName(ids, "mva.iteration"));
}

// The heart of the determinism contract: the same workload records the
// same event set - identities, not just counts - no matter how many
// workers the pool runs. Mirrors the fault layer's schedule-independent
// indexing (docs/CORRECTNESS.md §9).
TEST_F(TraceTest, EventSetIsIdenticalAcrossJobCounts)
{
    auto serial = tracedSweepIdentities(TraceLevel::Iteration, 1);
    auto two = tracedSweepIdentities(TraceLevel::Iteration, 2);
    auto eight = tracedSweepIdentities(TraceLevel::Iteration, 8);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, two);
    EXPECT_EQ(serial, eight);
}

TEST_F(TraceTest, SnapshotIsSortedByIdentity)
{
    setTrace(TraceLevel::Iteration);
    setParallelJobs(2);
    runSweep(basicSpec());
    setParallelJobs(0);
    auto events = snapshotTraceEvents();
    ASSERT_FALSE(events.empty());
    auto tuple = [](const TraceEvent &e) {
        return std::tie(e.task, e.seq, e.name, e.key, e.args);
    };
    EXPECT_TRUE(std::is_sorted(
        events.begin(), events.end(),
        [&](const TraceEvent &a, const TraceEvent &b) {
            return tuple(a) < tuple(b);
        }));
}

TEST_F(TraceTest, TaskScopeGroupsEventsByWorkItem)
{
    setTrace(TraceLevel::Iteration);
    {
        TraceTaskScope task(7);
        traceInstant(TraceLevel::Phase, "inner", 1);
    }
    traceInstant(TraceLevel::Phase, "outer", 2);
    auto events = snapshotTraceEvents();
    ASSERT_EQ(events.size(), 2u);
    // Identity order: task 0 (root) sorts before task 7.
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[0].task, 0u);
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[1].task, 7u);
    EXPECT_EQ(events[1].seq, 0u); // seq restarts inside the scope
}

TEST_F(TraceTest, WriteTraceJsonEmitsChromeTraceEvents)
{
    setTrace(TraceLevel::Iteration);
    setParallelJobs(1);
    runSweep(basicSpec());
    std::string path = testing::TempDir() + "snoop_trace_test.json";
    ASSERT_TRUE(static_cast<bool>(writeTraceJson(path)));
    std::string text = slurp(path);
    std::remove(path.c_str());
    EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(text.find("\"name\":\"sweep.cell\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"mva.iteration\""),
              std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("\"cat\":\"snoop\""), std::string::npos);
    // Every brace closes: cheap structural sanity without a parser.
    EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
              std::count(text.begin(), text.end(), '}'));
    EXPECT_EQ(std::count(text.begin(), text.end(), '['),
              std::count(text.begin(), text.end(), ']'));
}

TEST_F(TraceTest, ClearTraceDropsBufferedEvents)
{
    setTrace(TraceLevel::Phase);
    traceInstant(TraceLevel::Phase, "kept", 0);
    EXPECT_EQ(snapshotTraceEvents().size(), 1u);
    clearTrace();
    EXPECT_FALSE(traceEnabled(TraceLevel::Phase));
    EXPECT_TRUE(snapshotTraceEvents().empty());
}

} // namespace
} // namespace snoop
