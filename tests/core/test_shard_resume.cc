/**
 * Resume-equivalence and sharding-determinism tests: a sweep killed at
 * any checkpoint boundary (via the keyed sweep.checkpoint fault site)
 * and rerun produces byte-identical table/CSV/cell-CSV output to the
 * uninterrupted run at SNOOP_JOBS=1/2/8, and the concatenation of N
 * shards' cellCsv() outputs equals the unsharded run's.
 * tools/run_chaos.sh proves the same claims against real SIGKILLs;
 * these tests pin them in-process where every boundary is enumerable.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.hh"
#include "core/sweep.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace snoop {
namespace {

SweepSpec
resumableSpec()
{
    SweepSpec spec;
    spec.base = presets::appendixA(SharingLevel::FivePercent);
    spec.paramName = "h_sw";
    spec.set = findParamSetter("h_sw");
    spec.values = {0.1, 0.25, 0.4, 0.55, 0.7};
    spec.protocols = {ProtocolConfig::writeOnce(),
                      *findProtocol("Illinois"),
                      *findProtocol("Berkeley"),
                      *findProtocol("Dragon")};
    spec.n = 8;
    spec.checkpointEvery = 4; // 20 cells -> 5 checkpoint boundaries
    return spec;
}

/** Every rendering of a result that the byte-identity claim covers. */
std::string
allOutputs(const SweepResult &res)
{
    return res.table().render() + "\n" + res.csv() + "\n" +
           res.cellCsv();
}

class ShardResume : public testing::Test
{
  protected:
    void SetUp() override
    {
        clearFaultSpecs();
        setParallelJobs(0);
        path_ = testing::TempDir() + "snoop_resume_test.ckpt";
        std::remove(path_.c_str());
    }
    void TearDown() override
    {
        clearFaultSpecs();
        setParallelJobs(0);
        std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(ShardResume, KilledAtEveryBoundaryResumesByteIdentically)
{
    SweepSpec spec = resumableSpec();
    const std::string golden = allOutputs(runSweep(spec));

    spec.checkpointPath = path_;
    // 20 cells at checkpointEvery=4 commit at ordinals 1..5; the kill
    // at ordinal k aborts with the first k*4 cells durable. Resume
    // from every one of those boundaries, at several thread counts,
    // and require byte-identical output.
    for (size_t k = 1; k <= 5; ++k) {
        for (unsigned jobs : {1u, 2u, 8u}) {
            std::remove(path_.c_str());
            setParallelJobs(jobs);
            ASSERT_TRUE(setFaultSpecs(
                            strprintf("sweep.checkpoint:every=%zu", k))
                            .ok());
            auto killed = tryRunSweep(spec);
            ASSERT_FALSE(killed.ok()) << "k=" << k;
            EXPECT_EQ(killed.error().code, SolveErrorCode::InjectedFault);
            EXPECT_EQ(killed.error().site, "sweep.checkpoint");

            clearFaultSpecs();
            auto resumed = tryRunSweep(spec);
            ASSERT_TRUE(resumed.ok())
                << "k=" << k << ": " << resumed.error().describe();
            EXPECT_EQ(allOutputs(resumed.value()), golden)
                << "killed at checkpoint " << k << ", jobs=" << jobs;
            EXPECT_EQ(resumed.value().evaluatedCount(), 20u);
        }
    }
}

TEST_F(ShardResume, ChainOfKillsStillConverges)
{
    // every=1 kills the run after EVERY commit: each resume advances
    // exactly one batch before dying, until the final resume finds
    // nothing pending and completes - the worst-case crash cadence.
    SweepSpec spec = resumableSpec();
    const std::string golden = allOutputs(runSweep(spec));
    spec.checkpointPath = path_;

    ASSERT_TRUE(setFaultSpecs("sweep.checkpoint:every=1").ok());
    int kills = 0;
    Expected<SweepResult> res = tryRunSweep(spec);
    while (!res.ok()) {
        ASSERT_EQ(res.error().code, SolveErrorCode::InjectedFault);
        ASSERT_LT(++kills, 20) << "no forward progress across resumes";
        res = tryRunSweep(spec);
    }
    EXPECT_EQ(kills, 5); // one kill per batch of 4, none on the last
    EXPECT_EQ(allOutputs(res.value()), golden);
}

TEST_F(ShardResume, ShardCellCsvsConcatenateToTheUnshardedRun)
{
    SweepSpec spec = resumableSpec();
    const SweepResult whole = runSweep(spec);

    for (size_t count : {2u, 4u, 7u}) {
        std::string stitched;
        for (size_t index = 0; index < count; ++index) {
            SweepSpec shard = spec;
            shard.shard = {index, count};
            auto res = tryRunSweep(shard);
            ASSERT_TRUE(res.ok());
            auto [begin, end] = shard.shard.cellRange(20);
            EXPECT_EQ(res.value().evaluatedCount(), end - begin);
            stitched += res.value().cellCsv();
        }
        EXPECT_EQ(stitched, whole.cellCsv()) << count << " shards";
    }
}

TEST_F(ShardResume, ShardedResumeIsByteIdenticalToo)
{
    // Kill-and-resume one shard: its slice must come back identical
    // to the same shard of an uninterrupted run.
    SweepSpec spec = resumableSpec();
    spec.shard = {1, 3};
    const std::string golden = allOutputs(runSweep(spec));

    spec.checkpointPath = path_;
    ASSERT_TRUE(setFaultSpecs("sweep.checkpoint:every=1").ok());
    auto killed = tryRunSweep(spec);
    ASSERT_FALSE(killed.ok());
    clearFaultSpecs();
    auto resumed = tryRunSweep(spec);
    ASSERT_TRUE(resumed.ok()) << resumed.error().describe();
    EXPECT_EQ(allOutputs(resumed.value()), golden);
}

TEST_F(ShardResume, ErrorCellsSurviveTheKillAndResume)
{
    // A failing cell committed before the kill must come back from the
    // checkpoint as the same error cell, not be re-evaluated or lost.
    SweepSpec spec = resumableSpec();
    spec.values[0] = 1.5; // not a probability: 4 error cells in batch 1
    testing::internal::CaptureStderr();
    const SweepResult golden = runSweep(spec);
    testing::internal::GetCapturedStderr();
    ASSERT_EQ(golden.failureCount(), 4u);

    spec.checkpointPath = path_;
    ASSERT_TRUE(setFaultSpecs("sweep.checkpoint:every=1").ok());
    testing::internal::CaptureStderr();
    auto killed = tryRunSweep(spec);
    ASSERT_FALSE(killed.ok());
    clearFaultSpecs();
    auto resumed = tryRunSweep(spec);
    testing::internal::GetCapturedStderr();
    ASSERT_TRUE(resumed.ok()) << resumed.error().describe();
    EXPECT_EQ(resumed.value().failureCount(), 4u);
    EXPECT_EQ(resumed.value().errors[0][0]->describe(),
              golden.errors[0][0]->describe());
    EXPECT_EQ(allOutputs(resumed.value()), allOutputs(golden));
}

} // namespace
} // namespace snoop
