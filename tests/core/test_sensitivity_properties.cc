/**
 * Directional-sensitivity property tests: for every sweepable workload
 * parameter, the model must respond in the direction the system's
 * mechanics dictate. These catch sign errors anywhere in the
 * derived-input pipeline (the most likely silent-corruption point,
 * since Table 4.1 regressions only cover the Appendix A values).
 */

#include <gtest/gtest.h>

#include "core/sweep.hh"

namespace snoop {
namespace {

/** Expected speedup response to raising one parameter. */
enum class Direction { Increases, Decreases, Free };

struct Expectation
{
    const char *param;
    double lo, hi;
    Direction direction;
    const char *why;
};

const Expectation kExpectations[] = {
    // longer execution bursts -> less bus pressure per cycle
    {"tau", 1.0, 6.0, Direction::Increases,
     "more computation per request amortizes contention"},
    // better hit rates -> fewer bus transactions
    {"h_private", 0.80, 0.99, Direction::Increases, "fewer misses"},
    {"h_sro", 0.80, 0.99, Direction::Increases, "fewer misses"},
    {"h_sw", 0.10, 0.90, Direction::Increases, "fewer misses"},
    // more reads -> fewer consistency actions
    {"r_private", 0.50, 0.95, Direction::Increases,
     "fewer write-hit broadcasts and read-mods"},
    {"r_sw", 0.10, 0.90, Direction::Increases,
     "fewer sw write broadcasts"},
    // already-modified write hits stay local
    {"amod_private", 0.30, 0.95, Direction::Increases,
     "fewer first-write broadcasts"},
    {"amod_sw", 0.05, 0.95, Direction::Increases,
     "fewer sw first-write broadcasts"},
    // cache supply replaces the slower memory path
    {"csupply_sro", 0.10, 0.95, Direction::Increases,
     "cache-involved transfers beat memory-supplied reads"},
    // a dirty supplier forces flush + memory read (Write-Once)
    {"wb_csupply", 0.00, 0.90, Direction::Decreases,
     "dirty suppliers flush before memory supplies"},
    // replacement write-backs lengthen read transactions
    {"rep_p", 0.00, 0.90, Direction::Decreases, "victim write-backs"},
    {"rep_sw", 0.00, 0.90, Direction::Decreases, "victim write-backs"},
    // csupply_sw trades a faster clean supply against the chance of a
    // dirty-supplier flush: direction depends on wb_csupply, so only
    // well-definedness is asserted
    {"csupply_sw", 0.10, 0.90, Direction::Free, "two opposing effects"},
};

class Sensitivity : public testing::TestWithParam<Expectation>
{
};

TEST_P(Sensitivity, SpeedupMovesInTheMechanicallyExpectedDirection)
{
    const auto &e = GetParam();
    SweepSpec spec;
    spec.base = presets::appendixA(SharingLevel::TwentyPercent);
    spec.paramName = e.param;
    spec.set = findParamSetter(e.param);
    ASSERT_TRUE(spec.set != nullptr) << e.param;
    const int steps = 5;
    for (int i = 0; i < steps; ++i) {
        spec.values.push_back(e.lo + (e.hi - e.lo) * i / (steps - 1));
    }
    spec.protocols = {ProtocolConfig::writeOnce()};
    spec.n = 10;
    auto res = runSweep(spec);

    for (size_t v = 1; v < res.results.size(); ++v) {
        double prev = res.results[v - 1][0].speedup;
        double cur = res.results[v][0].speedup;
        switch (e.direction) {
          case Direction::Increases:
            EXPECT_GE(cur, prev * 0.9999)
                << e.param << " step " << v << " (" << e.why << ")";
            break;
          case Direction::Decreases:
            EXPECT_LE(cur, prev * 1.0001)
                << e.param << " step " << v << " (" << e.why << ")";
            break;
          case Direction::Free:
            EXPECT_GT(cur, 0.0);
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllParameters, Sensitivity, testing::ValuesIn(kExpectations),
    [](const testing::TestParamInfo<Expectation> &info) {
        return std::string(info.param.param);
    });

TEST(Sensitivity, DirectionsHoldForEveryProtocolFamily)
{
    // Spot-check the two strongest directions across the whole design
    // space: hit rates help, replacement write-backs hurt.
    Analyzer analyzer;
    for (unsigned idx = 0; idx < 16; ++idx) {
        auto cfg = ProtocolConfig::fromIndex(idx);
        WorkloadParams lo = presets::appendixA(SharingLevel::FivePercent);
        WorkloadParams hi = lo;
        lo.hPrivate = 0.85;
        hi.hPrivate = 0.99;
        EXPECT_GT(analyzer.analyze(cfg, hi, 10).speedup,
                  analyzer.analyze(cfg, lo, 10).speedup)
            << cfg.name();

        WorkloadParams light = presets::appendixA(SharingLevel::FivePercent);
        WorkloadParams heavy = light;
        heavy.repP = 0.9;
        EXPECT_LT(analyzer.analyze(cfg, heavy, 10).speedup,
                  analyzer.analyze(cfg, light, 10).speedup)
            << cfg.name();
    }
}

} // namespace
} // namespace snoop
