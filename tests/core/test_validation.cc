/** Integration tests for the MVA-vs-simulator validation harness. */

#include <gtest/gtest.h>

#include "core/validation.hh"

namespace snoop {
namespace {

TEST(Validation, ReproducesPaperAgreementBand)
{
    // The headline experiment: the mean-value model tracks the
    // detailed model within a few percent over the whole sweep
    // (Section 4.2 reports <= 2.6% vs the GTPN for Write-Once; we
    // allow 6% against our simulator).
    ValidationConfig cfg;
    cfg.workload = presets::appendixA(SharingLevel::FivePercent);
    cfg.protocol = ProtocolConfig::writeOnce();
    cfg.ns = {1, 2, 4, 6, 8, 10};
    cfg.measuredRequests = 150000;
    auto pts = validate(cfg);
    ASSERT_EQ(pts.size(), 6u);
    EXPECT_LE(maxAbsError(pts), 0.06);
}

TEST(Validation, PointsCarryBothModels)
{
    ValidationConfig cfg;
    cfg.workload = presets::appendixA(SharingLevel::OnePercent);
    cfg.protocol = ProtocolConfig::fromModString("1");
    cfg.ns = {2, 6};
    cfg.measuredRequests = 60000;
    auto pts = validate(cfg);
    for (const auto &p : pts) {
        EXPECT_EQ(p.mva.numProcessors, p.numProcessors);
        EXPECT_EQ(p.sim.numProcessors, p.numProcessors);
        EXPECT_GT(p.sim.requestsMeasured, 0u);
    }
}

TEST(Validation, MvaUnderestimatesBusUtilizationLikeThePaper)
{
    // Section 4.2: "the approximate MVA equations generally
    // underestimate bus utilization ... relative to the GTPN model."
    ValidationConfig cfg;
    cfg.workload = presets::appendixA(SharingLevel::FivePercent);
    cfg.protocol = ProtocolConfig::writeOnce();
    cfg.ns = {6, 8, 10};
    cfg.measuredRequests = 150000;
    auto pts = validate(cfg);
    for (const auto &p : pts) {
        EXPECT_LE(p.mva.busUtil, p.sim.busUtilization + 0.01)
            << "N=" << p.numProcessors;
    }
}

TEST(Validation, TableRendersAllColumns)
{
    ValidationConfig cfg;
    cfg.workload = presets::appendixA(SharingLevel::FivePercent);
    cfg.protocol = ProtocolConfig::writeOnce();
    cfg.ns = {2};
    cfg.measuredRequests = 30000;
    auto pts = validate(cfg);
    auto table = comparisonTable(pts, "demo");
    std::string out = table.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("MVA speedup"), std::string::npos);
    EXPECT_NE(out.find("sim 95% CI"), std::string::npos);
    EXPECT_EQ(table.numRows(), 1u);
}

TEST(Validation, ErrorHelpers)
{
    ComparisonPoint p;
    p.mva.speedup = 5.0;
    p.sim.speedup = 4.0;
    p.sim.speedupCi.mean = 4.0;
    p.sim.speedupCi.halfWidth = 0.5;
    EXPECT_DOUBLE_EQ(p.speedupError(), 0.25);
    EXPECT_FALSE(p.withinCi());
    p.mva.speedup = 4.3;
    EXPECT_TRUE(p.withinCi());
    EXPECT_DOUBLE_EQ(maxAbsError({p}), 0.075);
}

} // namespace
} // namespace snoop
