/**
 * End-to-end fault-injection tests: arm util/fault sites and observe
 * the isolation the pipeline promises - one poisoned sweep cell,
 * replication, or validation point fails alone, deterministically at
 * any thread count, and file output never half-commits.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/sweep.hh"
#include "core/validation.hh"
#include "sim/prob_sim.hh"
#include "util/csv.hh"
#include "util/fault.hh"
#include "util/parallel.hh"

namespace snoop {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Every test starts and ends disarmed and on the default pool. */
class FaultInjection : public testing::Test
{
  protected:
    void SetUp() override { clearFaultSpecs(); }
    void TearDown() override
    {
        clearFaultSpecs();
        setParallelJobs(0);
    }
};

SweepSpec
hswSpec()
{
    SweepSpec spec;
    spec.base = presets::appendixA(SharingLevel::FivePercent);
    spec.paramName = "h_sw";
    spec.set = findParamSetter("h_sw");
    spec.values = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7};
    spec.protocols = {ProtocolConfig::writeOnce(),
                      *findProtocol("Illinois")};
    spec.n = 10;
    return spec;
}

TEST_F(FaultInjection, SweepCellFaultIsIsolated)
{
    // 7 values x 2 protocols = 14 cells; every=5 poisons flat indices
    // 0, 5, and 10. All other cells must match a fault-free run
    // exactly.
    auto clean = runSweep(hswSpec());
    ASSERT_TRUE(setFaultSpecs("sweep.cell:every=5").ok());
    testing::internal::CaptureStderr();
    auto res = runSweep(hswSpec());
    std::string err = testing::internal::GetCapturedStderr();

    EXPECT_EQ(res.failureCount(), 3u);
    const size_t cols = 2;
    for (size_t idx : {0u, 5u, 10u}) {
        size_t v = idx / cols, p = idx % cols;
        ASSERT_TRUE(res.cellFailed(v, p)) << idx;
        EXPECT_EQ(res.errors[v][p]->code, SolveErrorCode::InjectedFault);
        EXPECT_EQ(res.errors[v][p]->site, "sweep.cell");
    }
    for (size_t v = 0; v < res.results.size(); ++v) {
        for (size_t p = 0; p < cols; ++p) {
            if (res.cellFailed(v, p))
                continue;
            EXPECT_DOUBLE_EQ(res.results[v][p].speedup,
                             clean.results[v][p].speedup);
        }
    }
    // The end-of-run warning reports exactly the failed cells.
    EXPECT_NE(err.find("3 of 14 cells failed"), std::string::npos);
    EXPECT_NE(err.find("injected-fault"), std::string::npos);
    // winners() skips the poisoned cells instead of electing them.
    auto winners = res.winners();
    ASSERT_EQ(winners.size(), 7u);
    for (size_t w : winners)
        EXPECT_NE(w, SweepResult::kNoWinner);
}

TEST_F(FaultInjection, SweepCellFaultsAreThreadCountInvariant)
{
    // The injected-cell set is keyed on the flat cell index, never on
    // scheduling: serial and parallel runs fail the same cells and
    // produce bit-identical survivors.
    ASSERT_TRUE(setFaultSpecs("sweep.cell:every=5").ok());
    setParallelJobs(1);
    auto serial = runSweep(hswSpec());
    for (unsigned jobs : {2u, 8u}) {
        setParallelJobs(jobs);
        auto parallel = runSweep(hswSpec());
        ASSERT_EQ(parallel.results.size(), serial.results.size());
        for (size_t v = 0; v < serial.results.size(); ++v) {
            for (size_t p = 0; p < serial.results[v].size(); ++p) {
                ASSERT_EQ(parallel.cellFailed(v, p),
                          serial.cellFailed(v, p))
                    << "jobs=" << jobs << " v=" << v << " p=" << p;
                if (serial.cellFailed(v, p)) {
                    EXPECT_EQ(parallel.errors[v][p]->describe(),
                              serial.errors[v][p]->describe());
                } else {
                    EXPECT_DOUBLE_EQ(parallel.results[v][p].speedup,
                                     serial.results[v][p].speedup);
                }
            }
        }
        EXPECT_EQ(parallel.failureSummary(), serial.failureSummary());
    }
}

TEST_F(FaultInjection, ReplicationFaultIsIsolated)
{
    SimConfig cfg;
    cfg.workload = presets::appendixA(SharingLevel::FivePercent);
    cfg.numProcessors = 4;
    cfg.warmupRequests = 2000;
    cfg.measuredRequests = 10000;

    auto clean = simulateReplications(cfg, 6);
    ASSERT_TRUE(setFaultSpecs("sim.replication:every=3").ok());
    testing::internal::CaptureStderr();
    auto set = simulateReplications(cfg, 6);
    std::string err = testing::internal::GetCapturedStderr();

    EXPECT_EQ(set.failureCount(), 2u); // replications 0 and 3
    ASSERT_EQ(set.errors.size(), 6u);
    EXPECT_TRUE(set.errors[0].has_value());
    EXPECT_TRUE(set.errors[3].has_value());
    EXPECT_EQ(set.errors[0]->code, SolveErrorCode::InjectedFault);
    // Surviving replications are bit-identical to the fault-free run:
    // substream seeding makes replication i independent of who else
    // ran.
    for (size_t i : {1u, 2u, 4u, 5u}) {
        ASSERT_FALSE(set.errors[i].has_value()) << i;
        EXPECT_DOUBLE_EQ(set.runs[i].speedup, clean.runs[i].speedup);
    }
    // Statistics come from the survivors and stay well-formed.
    EXPECT_GT(set.speedup.mean, 0.0);
    EXPECT_NE(err.find("2 of 6 replications failed"),
              std::string::npos);
    EXPECT_NE(set.summary().find("[2 failed]"), std::string::npos);
}

TEST_F(FaultInjection, ValidationPointFaultIsIsolated)
{
    ValidationConfig cfg;
    cfg.workload = presets::appendixA(SharingLevel::FivePercent);
    cfg.protocol = ProtocolConfig::writeOnce();
    cfg.ns = {2, 4};
    cfg.warmupRequests = 2000;
    cfg.measuredRequests = 10000;

    ASSERT_TRUE(setFaultSpecs("validate.point:every=2").ok());
    testing::internal::CaptureStderr();
    auto points = validate(cfg);
    testing::internal::GetCapturedStderr();

    ASSERT_EQ(points.size(), 2u);
    EXPECT_FALSE(points[0].ok());
    EXPECT_EQ(points[0].error->code, SolveErrorCode::InjectedFault);
    EXPECT_TRUE(points[1].ok());
    EXPECT_GT(points[1].mva.speedup, 0.0);
    // Rendering and aggregation skip the failed point.
    auto table = comparisonTable(points, "faulted");
    EXPECT_NE(table.render().find("—"), std::string::npos);
    EXPECT_TRUE(std::isfinite(maxAbsError(points)));
}

TEST_F(FaultInjection, IoCommitFaultLeavesDestinationUntouched)
{
    std::string path = testing::TempDir() + "snoop_fault_io.csv";
    std::remove(path.c_str());
    {
        CsvWriter w(path);
        w.header({"n", "speedup"});
        w.row({"4", "3.17"});
        EXPECT_TRUE(w.close().ok());
    }
    std::string committed = slurp(path);
    ASSERT_NE(committed.find("3.17"), std::string::npos);

    ASSERT_TRUE(setFaultSpecs("io.commit").ok());
    CsvWriter w(path);
    w.header({"n", "speedup"});
    w.row({"8", "9.99"});
    auto r = w.close();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::IoError);
    // The failed commit discarded its temporary; the previous
    // contents survive byte for byte.
    EXPECT_EQ(slurp(path), committed);
    std::remove(path.c_str());
}

TEST_F(FaultInjection, IoFsyncFaultIsAnErrorNotSilentSuccess)
{
    // The durability contract of util/atomic_file.hh: an fsync that
    // cannot reach stable storage must surface as IoError. The fault
    // fires on the pre-rename file sync, so the previous destination
    // contents also survive.
    std::string path = testing::TempDir() + "snoop_fault_fsync.csv";
    std::remove(path.c_str());
    {
        CsvWriter w(path);
        w.header({"n", "speedup"});
        w.row({"4", "3.17"});
        EXPECT_TRUE(w.close().ok());
    }
    std::string committed = slurp(path);

    ASSERT_TRUE(setFaultSpecs("io.fsync").ok());
    CsvWriter w(path);
    w.header({"n", "speedup"});
    w.row({"8", "9.99"});
    auto r = w.close();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::IoError);
    EXPECT_NE(r.error().message.find("fsync"), std::string::npos);
    EXPECT_EQ(slurp(path), committed);
    std::remove(path.c_str());
}

TEST_F(FaultInjection, MvaLadderRecoversFromFirstAttemptFault)
{
    // Poison only the first MVA attempt: the recovery ladder retries
    // at heavier damping and the solve still lands.
    ASSERT_TRUE(setFaultSpecs("mva.first_attempt").ok());
    MvaSolver solver;
    auto inputs = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::writeOnce());
    auto r = solver.solve(inputs, 8);
    EXPECT_TRUE(r.converged);
    ASSERT_GE(r.attempts.size(), 2u);
    EXPECT_FALSE(r.attempts.front().converged);
    EXPECT_TRUE(r.attempts.back().converged);
    EXPECT_LT(r.attempts.back().damping, 1.0);

    // The same solve without the fault needs exactly one attempt.
    clearFaultSpecs();
    auto clean = solver.solve(inputs, 8);
    ASSERT_EQ(clean.attempts.size(), 1u);
    EXPECT_DOUBLE_EQ(clean.attempts.front().damping, 1.0);
}

TEST_F(FaultInjection, LadderFiresForConfiguredDampingBelowHalf)
{
    // Regression for the dead-ladder bug: the old loop iterated the
    // shared rungs and *broke* on the first rung >= the configured
    // damping, so with damping 0.3 the 0.5 rung terminated the
    // ladder and a failed first attempt was never rescued. The fix
    // skips ineligible rungs instead: attempt 0 runs at 0.3, and the
    // first retry runs at 0.25 (0.5 is skipped, not a terminator).
    ASSERT_TRUE(setFaultSpecs("mva.first_attempt").ok());
    MvaOptions opts;
    opts.damping = 0.3;
    MvaSolver solver(opts);
    auto inputs = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::writeOnce());
    auto r = solver.trySolve(inputs, 8);
    ASSERT_TRUE(r.ok()) << r.error().describe();
    EXPECT_TRUE(r.value().converged);
    const auto &attempts = r.value().attempts;
    ASSERT_GE(attempts.size(), 2u);
    EXPECT_DOUBLE_EQ(attempts[0].damping, 0.3);
    EXPECT_FALSE(attempts[0].converged);
    EXPECT_DOUBLE_EQ(attempts[1].damping, 0.25);
    EXPECT_TRUE(attempts.back().converged);
}

TEST_F(FaultInjection, NanFaultSurfacesAsStructuredError)
{
    // fixed_point.nan poisons every attempt: the ladder exhausts and
    // the failure comes back as NonFiniteIterate, not a crash.
    ASSERT_TRUE(setFaultSpecs("mva.nan").ok());
    MvaSolver solver;
    auto inputs = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::writeOnce());
    auto r = solver.trySolve(inputs, 8);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::NonFiniteIterate);
}

} // namespace
} // namespace snoop
