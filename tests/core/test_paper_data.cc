/** Unit tests for the paper reference data tables. */

#include <gtest/gtest.h>

#include "core/paper_data.hh"

namespace snoop {
namespace {

TEST(PaperData, TableShapes)
{
    EXPECT_EQ(table41Ns().size(), 9u);
    EXPECT_EQ(table41GtpnNs().size(), 6u);
    for (char sub : {'a', 'b', 'c'}) {
        const auto &rows = paperTable41(sub);
        ASSERT_EQ(rows.size(), 3u) << sub;
        for (const auto &row : rows) {
            EXPECT_EQ(row.mva.size(), table41Ns().size());
            EXPECT_EQ(row.gtpn.size(), table41GtpnNs().size());
        }
    }
}

TEST(PaperData, ModStrings)
{
    EXPECT_EQ(table41Mods('a'), "");
    EXPECT_EQ(table41Mods('b'), "1");
    EXPECT_EQ(table41Mods('c'), "14");
}

TEST(PaperData, RowsOrderedBySharingLevel)
{
    for (char sub : {'a', 'b', 'c'}) {
        const auto &rows = paperTable41(sub);
        EXPECT_EQ(rows[0].level, SharingLevel::OnePercent);
        EXPECT_EQ(rows[1].level, SharingLevel::FivePercent);
        EXPECT_EQ(rows[2].level, SharingLevel::TwentyPercent);
    }
}

TEST(PaperData, MvaAndGtpnColumnsAgreeWithinPaperClaim)
{
    // The paper's own claim: MVA within ~3% of GTPN for (a), within
    // 4.25% for (b), nearly exact for (c).
    for (char sub : {'a', 'b', 'c'}) {
        for (const auto &row : paperTable41(sub)) {
            for (size_t i = 0; i < row.gtpn.size(); ++i) {
                double rel = (row.mva[i] - row.gtpn[i]) / row.gtpn[i];
                EXPECT_LE(std::abs(rel), 0.0425 + 1e-9)
                    << sub << " " << to_string(row.level) << " N="
                    << table41GtpnNs()[i];
            }
        }
    }
}

TEST(PaperData, SpeedupsIncreaseWithN)
{
    for (char sub : {'a', 'b', 'c'}) {
        for (const auto &row : paperTable41(sub)) {
            // monotone up to N=20 (index 7); the N=100 column may sag
            for (size_t i = 1; i <= 7; ++i)
                EXPECT_GE(row.mva[i], row.mva[i - 1]);
        }
    }
}

TEST(PaperData, SpotChecks)
{
    auto s = paperSpotChecks();
    EXPECT_DOUBLE_EQ(s.processingPowerMva, 4.32);
    EXPECT_DOUBLE_EQ(s.processingPowerGtpn, 4.1);
    EXPECT_DOUBLE_EQ(s.busUtilMva6, 0.77);
    EXPECT_DOUBLE_EQ(s.busUtilGtpn6, 0.81);
}

TEST(PaperDataDeath, UnknownSubTable)
{
    EXPECT_EXIT(paperTable41('d'), testing::ExitedWithCode(1),
                "unknown sub-table");
    EXPECT_EXIT(table41Mods('x'), testing::ExitedWithCode(1), "unknown");
}

} // namespace
} // namespace snoop
