/**
 * Agreement with the paper's *detailed-model* column: Table 4.1 also
 * publishes the GTPN speedups for N <= 10. Our discrete-event
 * simulator plays the GTPN's role, so its speedups should land on
 * those published values - and they do, within ~4.5% across all 54
 * comparable points. The MVA, compounding its own approximation with
 * the reconstructed input derivation, stays within ~7%.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/paper_data.hh"
#include "mva/solver.hh"
#include "sim/prob_sim.hh"

namespace snoop {
namespace {

class GtpnColumn : public testing::TestWithParam<char>
{
};

TEST_P(GtpnColumn, SimulatorMatchesPaperGtpnValues)
{
    char sub = GetParam();
    auto mods = ProtocolConfig::fromModString(table41Mods(sub));
    for (const auto &row : paperTable41(sub)) {
        for (size_t i = 0; i < table41GtpnNs().size(); ++i) {
            unsigned n = table41GtpnNs()[i];
            SimConfig sc;
            sc.numProcessors = n;
            sc.workload = presets::appendixA(row.level);
            sc.protocol = mods;
            sc.seed = 500 + n;
            sc.warmupRequests = 10000;
            sc.measuredRequests = 150000;
            double sim = simulate(sc).speedup;
            double rel = (sim - row.gtpn[i]) / row.gtpn[i];
            EXPECT_LE(std::fabs(rel), 0.06)
                << "sub=" << sub << " " << to_string(row.level)
                << " N=" << n << " sim=" << sim
                << " paper GTPN=" << row.gtpn[i];
        }
    }
}

TEST_P(GtpnColumn, MvaWithinCompoundBandOfPaperGtpn)
{
    char sub = GetParam();
    MvaSolver solver;
    auto mods = ProtocolConfig::fromModString(table41Mods(sub));
    for (const auto &row : paperTable41(sub)) {
        auto inputs =
            DerivedInputs::compute(presets::appendixA(row.level), mods);
        for (size_t i = 0; i < table41GtpnNs().size(); ++i) {
            unsigned n = table41GtpnNs()[i];
            double mva = solver.solve(inputs, n).speedup;
            double rel = (mva - row.gtpn[i]) / row.gtpn[i];
            EXPECT_LE(std::fabs(rel), 0.085)
                << "sub=" << sub << " " << to_string(row.level)
                << " N=" << n;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Table41, GtpnColumn,
                         testing::Values('a', 'b', 'c'));

} // namespace
} // namespace snoop
