/**
 * Checkpoint format tests: the MvaResult/SolveError codec round-trips
 * bit-exactly, the fingerprint pins exactly the grid-determining spec
 * fields, and every corruption - garbled header, flipped bytes,
 * truncated cells, bumped version, out-of-order or out-of-range cells
 * - is rejected with a structured error naming the file and offset,
 * never silently reused.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/checkpoint.hh"
#include "core/sweep.hh"
#include "protocol/catalog.hh"
#include "util/fault.hh"

namespace snoop {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content;
}

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.base = presets::appendixA(SharingLevel::FivePercent);
    spec.paramName = "h_sw";
    spec.set = findParamSetter("h_sw");
    spec.values = {0.1, 0.3, 0.5};
    spec.protocols = {ProtocolConfig::writeOnce(),
                      *findProtocol("Illinois")};
    spec.n = 8;
    return spec;
}

/** A checkpoint-file fixture: every test gets a fresh temp path. */
class Checkpoint : public testing::Test
{
  protected:
    void SetUp() override
    {
        clearFaultSpecs();
        path_ = testing::TempDir() + "snoop_ckpt_test.ckpt";
        std::remove(path_.c_str());
    }
    void TearDown() override
    {
        clearFaultSpecs();
        std::remove(path_.c_str());
    }

    std::string path_;
};

TEST(CheckpointCodec, MvaResultRoundTripsBitExactly)
{
    MvaResult r;
    r.numProcessors = 12;
    r.speedup = 7.123456789012345;
    r.processingPower = 6.5;
    r.responseTime = 10.0 / 3.0; // not exactly representable in decimal
    r.rLocal = 0.1;
    r.rBroadcast = 0.2;
    r.rRemoteRead = 0.3;
    r.wBus = 1.5;
    r.qBus = 0.25;
    r.busUtil = 0.875;
    r.pBusyBus = 0.5;
    r.tBus = 4.0;
    r.tResBus = 2.0;
    r.wMem = 0.75;
    r.memUtil = 0.125;
    r.pBusyMem = 0.0625;
    r.nInterference = 1.25;
    r.tInterference = 2.5;
    r.iterations = 17;
    r.converged = true;
    r.residual = 1e-9;
    r.warmStarted = true;

    MvaResult back;
    ASSERT_TRUE(mvaResultFromJson(mvaResultToJson(r), back).ok());
    EXPECT_EQ(back.numProcessors, r.numProcessors);
    // Bit-exact restoration is what the byte-identical-output claim
    // rides on: the JSON codec's shortest-round-trip serialization
    // must restore every double to the same bits.
    EXPECT_EQ(back.speedup, r.speedup);
    EXPECT_EQ(back.responseTime, r.responseTime);
    EXPECT_EQ(back.residual, r.residual);
    EXPECT_EQ(back.busUtil, r.busUtil);
    EXPECT_EQ(back.iterations, r.iterations);
    EXPECT_EQ(back.converged, r.converged);
    EXPECT_EQ(back.warmStarted, r.warmStarted);
}

TEST(CheckpointCodec, NonFiniteMeasuresSurviveAsNull)
{
    // JSON has no NaN/inf literal; the codec maps them through null
    // so a diverged-but-recorded cell still round-trips.
    MvaResult r;
    r.speedup = std::numeric_limits<double>::quiet_NaN();
    r.wBus = std::numeric_limits<double>::infinity();
    r.nonFinite = true;
    MvaResult back;
    ASSERT_TRUE(mvaResultFromJson(mvaResultToJson(r), back).ok());
    EXPECT_TRUE(std::isnan(back.speedup));
    EXPECT_TRUE(std::isnan(back.wBus)); // inf normalizes to NaN
    EXPECT_TRUE(back.nonFinite);
}

TEST(CheckpointCodec, MalformedResultsAreRejected)
{
    MvaResult out;
    EXPECT_FALSE(mvaResultFromJson(JsonValue(3.0), out).ok());
    JsonValue incomplete{JsonValue::Object{}};
    auto r = mvaResultFromJson(incomplete, out);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::InvalidArgument);
}

TEST(CheckpointCodec, FingerprintPinsTheGridAndNothingElse)
{
    SweepSpec spec = smallSpec();
    std::string base = sweepFingerprint(spec);

    // Operational knobs do not change the fingerprint: a resume may
    // change them, and every shard of one grid shares it.
    SweepSpec same = smallSpec();
    same.shard = {1, 4};
    same.checkpointPath = "elsewhere.ckpt";
    same.checkpointEvery = 1;
    EXPECT_EQ(sweepFingerprint(same), base);

    // Everything that determines cell results does change it.
    SweepSpec v = smallSpec();
    v.values[1] = 0.30000000000000004; // one ulp-ish nudge
    EXPECT_NE(sweepFingerprint(v), base);
    SweepSpec n = smallSpec();
    n.n = 9;
    EXPECT_NE(sweepFingerprint(n), base);
    SweepSpec p = smallSpec();
    p.protocols.push_back(*findProtocol("Dragon"));
    EXPECT_NE(sweepFingerprint(p), base);
    SweepSpec w = smallSpec();
    w.base.tau += 0.5;
    EXPECT_NE(sweepFingerprint(w), base);
}

TEST_F(Checkpoint, WriteReadRoundTrip)
{
    SweepSpec spec = smallSpec();
    spec.checkpointPath = path_;
    spec.checkpointEvery = 2;
    // Poison one cell so an error cell rides along in the file.
    ASSERT_TRUE(setFaultSpecs("sweep.cell:every=6").ok());
    testing::internal::CaptureStderr();
    auto res = tryRunSweep(spec);
    testing::internal::GetCapturedStderr();
    clearFaultSpecs();
    ASSERT_TRUE(res.ok());

    auto data = readSweepCheckpoint(path_);
    ASSERT_TRUE(data.ok()) << data.error().describe();
    EXPECT_EQ(data.value().version, kCheckpointVersion);
    EXPECT_EQ(data.value().fingerprint, sweepFingerprint(spec));
    EXPECT_EQ(data.value().gridCells, 6u);
    EXPECT_EQ(data.value().cells.size(), 6u);
    EXPECT_EQ(data.value().paramName, "h_sw");
    EXPECT_EQ(data.value().n, 8u);
    ASSERT_EQ(data.value().protocolMods.size(), 2u);
    EXPECT_EQ(data.value().protocolMods[1], "13"); // Illinois

    // Cell 0 carries the injected error, bit-identical through the
    // SolveError codec; survivors carry bit-exact results.
    const auto &cells = data.value().cells;
    EXPECT_FALSE(cells[0].ok);
    EXPECT_EQ(cells[0].error.code, SolveErrorCode::InjectedFault);
    EXPECT_EQ(cells[0].error.describe(),
              res.value().errors[0][0]->describe());
    EXPECT_TRUE(cells[1].ok);
    EXPECT_EQ(cells[1].result.speedup, res.value().results[0][1].speedup);
    for (size_t i = 1; i < cells.size(); ++i)
        EXPECT_GT(cells[i].cell, cells[i - 1].cell);
}

TEST_F(Checkpoint, ResumeFromCompleteCheckpointRecomputesNothing)
{
    SweepSpec spec = smallSpec();
    spec.checkpointPath = path_;
    auto first = tryRunSweep(spec);
    ASSERT_TRUE(first.ok());

    // Arm every cell to fail: if the resume re-evaluated anything,
    // the outputs would differ.
    ASSERT_TRUE(setFaultSpecs("sweep.cell:every=1").ok());
    auto resumed = tryRunSweep(spec);
    ASSERT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.value().failureCount(), 0u);
    EXPECT_EQ(resumed.value().csv(), first.value().csv());
    EXPECT_EQ(resumed.value().cellCsv(), first.value().cellCsv());
    EXPECT_EQ(resumed.value().table().render(),
              first.value().table().render());
}

TEST_F(Checkpoint, MismatchedSpecIsRejectedNotSilentlyReused)
{
    SweepSpec spec = smallSpec();
    spec.checkpointPath = path_;
    ASSERT_TRUE(tryRunSweep(spec).ok());

    SweepSpec changed = spec;
    changed.values[2] = 0.7; // a different sweep now
    auto res = tryRunSweep(changed);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(res.error().message.find("fingerprint"),
              std::string::npos);
}

TEST_F(Checkpoint, WrongShardIsRejected)
{
    SweepSpec spec = smallSpec();
    spec.checkpointPath = path_;
    spec.shard = {0, 2};
    ASSERT_TRUE(tryRunSweep(spec).ok());

    SweepSpec other = spec;
    other.shard = {1, 2}; // same grid, different slice
    auto res = tryRunSweep(other);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(res.error().message.find("shard"), std::string::npos);
}

TEST_F(Checkpoint, CorruptedHeaderIsRejectedNamingTheFile)
{
    SweepSpec spec = smallSpec();
    spec.checkpointPath = path_;
    ASSERT_TRUE(tryRunSweep(spec).ok());

    // Flip one byte inside the header's fingerprint.
    std::string contents = slurp(path_);
    size_t pos = contents.find("\"fingerprint\":\"");
    ASSERT_NE(pos, std::string::npos);
    pos += 15;
    contents[pos] = contents[pos] == 'a' ? 'b' : 'a';
    spit(path_, contents);

    auto data = readSweepCheckpoint(path_);
    ASSERT_FALSE(data.ok());
    EXPECT_EQ(data.error().code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(data.error().message.find(path_), std::string::npos);
    EXPECT_NE(data.error().message.find("checksum"), std::string::npos);
}

TEST_F(Checkpoint, TruncatedCellLineIsRejectedNamingTheOffset)
{
    SweepSpec spec = smallSpec();
    spec.checkpointPath = path_;
    ASSERT_TRUE(tryRunSweep(spec).ok());

    std::string contents = slurp(path_);
    // Chop the final cell line in half (keep its trailing newline so
    // the reader sees a short, garbled line rather than no line).
    size_t last_nl = contents.rfind('\n');
    size_t prev_nl = contents.rfind('\n', last_nl - 1);
    std::string truncated =
        contents.substr(0, prev_nl + (last_nl - prev_nl) / 2) + "\n";
    spit(path_, truncated);

    auto data = readSweepCheckpoint(path_);
    ASSERT_FALSE(data.ok());
    EXPECT_EQ(data.error().code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(data.error().message.find(path_), std::string::npos);
    EXPECT_NE(data.error().message.find("line 7"), std::string::npos);
    EXPECT_NE(data.error().message.find("byte offset"),
              std::string::npos);
}

TEST_F(Checkpoint, VersionBumpIsRejectedEvenWithAValidChecksum)
{
    SweepSpec spec = smallSpec();
    spec.checkpointPath = path_;
    ASSERT_TRUE(tryRunSweep(spec).ok());

    // Forge a future-version header with a *recomputed* checksum, so
    // the version check itself - not the checksum - must fire.
    std::string contents = slurp(path_);
    size_t nl = contents.find('\n');
    auto header = parseJson(contents.substr(0, nl));
    ASSERT_TRUE(header.ok());
    JsonValue h = std::move(header).value();
    h.asObject().erase("check");
    h.set("version", JsonValue(kCheckpointVersion + 1));
    h.set("check", JsonValue(fnv1aHex(serializeJson(h))));
    // (set order doesn't matter: objects serialize key-sorted.)
    JsonValue reserialized = h;
    reserialized.asObject().erase("check");
    ASSERT_EQ(h.get("check")->asString(),
              fnv1aHex(serializeJson(reserialized)));
    spit(path_, serializeJson(h) + contents.substr(nl));

    auto data = readSweepCheckpoint(path_);
    ASSERT_FALSE(data.ok());
    EXPECT_NE(data.error().message.find("version"), std::string::npos);
    EXPECT_NE(data.error().message.find("not the supported"),
              std::string::npos);
}

TEST_F(Checkpoint, EmptyAndGarbageFilesAreRejected)
{
    spit(path_, "");
    auto empty = readSweepCheckpoint(path_);
    ASSERT_FALSE(empty.ok());
    EXPECT_NE(empty.error().message.find("no header"),
              std::string::npos);

    spit(path_, "not json at all\n");
    auto garbage = readSweepCheckpoint(path_);
    ASSERT_FALSE(garbage.ok());
    EXPECT_NE(garbage.error().message.find("malformed header"),
              std::string::npos);

    spit(path_, "{\"format\":\"something-else\"}\n");
    auto wrong = readSweepCheckpoint(path_);
    ASSERT_FALSE(wrong.ok());
    EXPECT_NE(wrong.error().message.find("not a snoop-sweep-checkpoint"),
              std::string::npos);
}

TEST_F(Checkpoint, OutOfRangeAndOutOfOrderCellsAreRejected)
{
    SweepSpec spec = smallSpec();
    spec.checkpointPath = path_;
    spec.shard = {0, 2}; // owns cells [0, 3) of the 6-cell grid
    ASSERT_TRUE(tryRunSweep(spec).ok());
    std::string contents = slurp(path_);

    // A cell belonging to the other shard sneaks in.
    std::string smuggled = contents;
    size_t pos = smuggled.find("{\"cell\":2,");
    ASSERT_NE(pos, std::string::npos);
    smuggled.replace(pos, 10, "{\"cell\":5,");
    spit(path_, smuggled);
    auto out_of_range = readSweepCheckpoint(path_);
    ASSERT_FALSE(out_of_range.ok());
    EXPECT_NE(out_of_range.error().message.find("outside shard"),
              std::string::npos);

    // The same cell committed twice.
    std::string duplicated = contents;
    pos = duplicated.find("{\"cell\":1,");
    ASSERT_NE(pos, std::string::npos);
    duplicated.replace(pos, 10, "{\"cell\":0,");
    spit(path_, duplicated);
    auto out_of_order = readSweepCheckpoint(path_);
    ASSERT_FALSE(out_of_order.ok());
    EXPECT_NE(out_of_order.error().message.find("out of order"),
              std::string::npos);
}

TEST_F(Checkpoint, FailedCheckpointCommitIsAStructuredError)
{
    SweepSpec spec = smallSpec();
    spec.checkpointPath = path_;
    ASSERT_TRUE(setFaultSpecs("io.fsync").ok());
    auto res = tryRunSweep(spec);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, SolveErrorCode::IoError);
    EXPECT_NE(res.error().message.find("fsync"), std::string::npos);
}

TEST(ShardSlices, RangesAreContiguousExhaustiveAndOrdered)
{
    for (size_t cells : {0u, 1u, 7u, 14u, 112u, 113u}) {
        for (size_t count : {1u, 2u, 3u, 4u, 7u, 16u}) {
            size_t expect_begin = 0;
            for (size_t index = 0; index < count; ++index) {
                ShardSpec s{index, count};
                auto [begin, end] = s.cellRange(cells);
                EXPECT_EQ(begin, expect_begin)
                    << cells << " cells, shard " << index << "/"
                    << count;
                EXPECT_LE(begin, end);
                expect_begin = end;
            }
            EXPECT_EQ(expect_begin, cells) << count;
        }
    }
    EXPECT_TRUE(ShardSpec{}.isWhole());
    EXPECT_FALSE((ShardSpec{0, 4}).isWhole());
}

} // namespace
} // namespace snoop
