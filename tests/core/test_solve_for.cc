/** Unit tests for the inverse (solve-for-parameter) analysis. */

#include <gtest/gtest.h>

#include "core/solve_for.hh"

namespace snoop {
namespace {

SolveForQuery
hswQuery(double target)
{
    // NOTE: must be a protocol without mod 4 - under mods 1+4 the
    // model pins h_sw to 0.95 (Appendix A note), making the sweep a
    // no-op. Illinois (mods 1+3) passes h_sw through.
    SolveForQuery q;
    q.base = presets::appendixA(SharingLevel::TwentyPercent);
    q.protocol = *findProtocol("Illinois");
    q.n = 20;
    q.paramName = "h_sw";
    q.set = findParamSetter("h_sw");
    q.lo = 0.05;
    q.hi = 0.99;
    q.targetSpeedup = target;
    return q;
}

TEST(SolveFor, FindsValueThatHitsTheTarget)
{
    Analyzer analyzer;
    auto q = hswQuery(0.0);
    auto probe = solveForParameter(q, analyzer);
    ASSERT_GT(probe.speedupAtHi, probe.speedupAtLo);
    double target =
        0.5 * (probe.speedupAtLo + probe.speedupAtHi);
    q.targetSpeedup = target;
    auto r = solveForParameter(q, analyzer);
    ASSERT_TRUE(r.value.has_value());
    // verify by forward evaluation
    WorkloadParams wl = q.base;
    q.set(wl, *r.value);
    double s = analyzer.analyze(q.protocol, wl, q.n).speedup;
    EXPECT_NEAR(s, target, 0.01);
    EXPECT_GT(*r.value, q.lo);
    EXPECT_LT(*r.value, q.hi);
}

TEST(SolveFor, UnattainableTargetsReturnNullopt)
{
    auto low = solveForParameter(hswQuery(0.5));
    EXPECT_FALSE(low.value.has_value());
    auto high = solveForParameter(hswQuery(19.0));
    EXPECT_FALSE(high.value.has_value());
    // endpoint speedups are still reported for diagnostics
    EXPECT_GT(high.speedupAtHi, high.speedupAtLo);
}

TEST(SolveFor, PinnedParameterIsDetectedAsUnattainable)
{
    // Dragon (mods 1+4) pins h_sw, so any target away from the pinned
    // speedup is correctly reported unattainable with equal endpoint
    // diagnostics.
    auto q = hswQuery(7.0);
    q.protocol = *findProtocol("Dragon");
    auto r = solveForParameter(q);
    EXPECT_DOUBLE_EQ(r.speedupAtLo, r.speedupAtHi);
    if (std::abs(r.speedupAtLo - 7.0) > 1e-9) {
        EXPECT_FALSE(r.value.has_value());
    }
}

TEST(SolveFor, WorksOnDecreasingResponses)
{
    // rep_p hurts speedup: response decreases over [0, 0.9].
    SolveForQuery q;
    q.base = presets::appendixA(SharingLevel::FivePercent);
    q.protocol = ProtocolConfig::writeOnce();
    q.n = 10;
    q.paramName = "rep_p";
    q.set = findParamSetter("rep_p");
    q.lo = 0.0;
    q.hi = 0.9;
    Analyzer analyzer;
    // aim between the endpoint speedups
    auto probe = solveForParameter(q, analyzer);
    double target =
        0.5 * (probe.speedupAtLo + probe.speedupAtHi);
    q.targetSpeedup = target;
    auto r = solveForParameter(q, analyzer);
    ASSERT_TRUE(r.value.has_value());
    WorkloadParams wl = q.base;
    q.set(wl, *r.value);
    EXPECT_NEAR(analyzer.analyze(q.protocol, wl, q.n).speedup, target,
                0.01);
}

TEST(SolveFor, EndpointTargetsResolve)
{
    auto q = hswQuery(0.0);
    auto probe = solveForParameter(q);
    q.targetSpeedup = probe.speedupAtLo;
    auto r = solveForParameter(q);
    ASSERT_TRUE(r.value.has_value());
    EXPECT_NEAR(*r.value, q.lo, 0.01);
}

TEST(SolveFor, MalformedQueriesThrow)
{
    auto q = hswQuery(5.0);
    q.set = nullptr;
    try {
        solveForParameter(q);
        FAIL() << "expected SolveException";
    } catch (const SolveException &e) {
        EXPECT_EQ(e.error().code, SolveErrorCode::InvalidArgument);
        EXPECT_NE(std::string(e.what()).find("setter"),
                  std::string::npos);
    }
    q = hswQuery(5.0);
    q.lo = 0.9;
    q.hi = 0.1;
    EXPECT_THROW(solveForParameter(q), SolveException);
    q = hswQuery(5.0);
    q.n = 0;
    EXPECT_THROW(solveForParameter(q), SolveException);
    q = hswQuery(5.0);
    q.tolerance = 0.0;
    EXPECT_THROW(solveForParameter(q), SolveException);
}

} // namespace
} // namespace snoop
