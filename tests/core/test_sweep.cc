/** Unit tests for the parameter-sweep facility. */

#include <gtest/gtest.h>

#include "core/sweep.hh"
#include "util/parallel.hh"

namespace snoop {
namespace {

SweepSpec
basicSpec()
{
    SweepSpec spec;
    spec.base = presets::appendixA(SharingLevel::FivePercent);
    spec.paramName = "h_sw";
    spec.set = findParamSetter("h_sw");
    spec.values = {0.2, 0.5, 0.8};
    spec.protocols = {ProtocolConfig::writeOnce(),
                      *findProtocol("Illinois")};
    spec.n = 10;
    return spec;
}

TEST(Sweep, RegistryContainsAllPaperParameters)
{
    for (const char *name :
         {"tau", "h_private", "h_sro", "h_sw", "r_private", "r_sw",
          "amod_private", "amod_sw", "csupply_sro", "csupply_sw",
          "wb_csupply", "rep_p", "rep_sw"}) {
        EXPECT_TRUE(findParamSetter(name) != nullptr) << name;
    }
    EXPECT_TRUE(findParamSetter("bogus") == nullptr);
    EXPECT_EQ(sweepableParams().size(), 13u);
}

TEST(Sweep, SettersAreCaseInsensitive)
{
    auto set = findParamSetter(" H_SW ");
    ASSERT_TRUE(set != nullptr);
    WorkloadParams p;
    set(p, 0.25);
    EXPECT_DOUBLE_EQ(p.hSw, 0.25);
}

TEST(Sweep, GridShapeMatchesSpec)
{
    auto res = runSweep(basicSpec());
    ASSERT_EQ(res.results.size(), 3u);
    for (const auto &row : res.results)
        ASSERT_EQ(row.size(), 2u);
}

TEST(Sweep, ValuesActuallyApplied)
{
    auto res = runSweep(basicSpec());
    // higher h_sw -> fewer misses -> higher speedup, monotone
    EXPECT_LT(res.results[0][0].speedup, res.results[2][0].speedup);
    EXPECT_NEAR(res.results[1][0].inputs.effective.hSw, 0.5, 1e-12);
}

TEST(Sweep, TableAndCsvRender)
{
    auto res = runSweep(basicSpec());
    auto t = res.table();
    EXPECT_EQ(t.numRows(), 3u);
    std::string csv = res.csv();
    EXPECT_NE(csv.find("h_sw"), std::string::npos);
    EXPECT_NE(csv.find("Illinois"), std::string::npos);
    EXPECT_NE(csv.find("WriteOnce"), std::string::npos);
}

TEST(Sweep, WinnersDetectDominantProtocol)
{
    auto res = runSweep(basicSpec());
    auto winners = res.winners();
    ASSERT_EQ(winners.size(), 3u);
    // Illinois (mods 1+3) dominates Write-Once across this sweep.
    for (size_t w : winners)
        EXPECT_EQ(w, 1u);
}

TEST(Sweep, AmodSweepReproducesSection44Crossover)
{
    // Sweeping amod_private narrows the mod1-vs-mod2 gap (E10).
    SweepSpec spec;
    spec.base = presets::appendixA(SharingLevel::OnePercent);
    spec.paramName = "amod_private";
    spec.set = findParamSetter("amod_private");
    spec.values = {0.5, 0.7, 0.9, 0.95};
    spec.protocols = {ProtocolConfig::fromModString("1"),
                      ProtocolConfig::fromModString("2")};
    spec.n = 10;
    auto res = runSweep(spec);
    double gap_low = res.results[0][0].speedup /
        res.results[0][1].speedup;
    double gap_high = res.results[3][0].speedup /
        res.results[3][1].speedup;
    EXPECT_GT(gap_low, gap_high);
    EXPECT_NEAR(gap_high, 1.0, 0.05);
}

TEST(Sweep, WinnersTieBreaksToLowestIndex)
{
    // Ties resolve to the lowest protocol index (column order).
    SweepResult res;
    res.results.resize(1);
    MvaResult r;
    r.speedup = 5.0;
    res.results[0] = {r, r, r}; // three-way tie
    auto winners = res.winners();
    ASSERT_EQ(winners.size(), 1u);
    EXPECT_EQ(winners[0], 0u);
}

TEST(Sweep, WinnersRejectsEmptyRowAsStructuredError)
{
    // A degenerate grid (rows but no protocol columns - e.g. a
    // mis-merged shard set) must come back as a structured error from
    // tryWinners(), and as a SolveException (not an abort) from the
    // throwing wrapper, so the merge tool and serve layer can report
    // it instead of dying.
    SweepResult res;
    res.results.resize(2); // rows exist but hold no protocol results
    auto winners = res.tryWinners();
    ASSERT_FALSE(winners.ok());
    EXPECT_EQ(winners.error().code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(winners.error().message.find("no protocol results"),
              std::string::npos);
    EXPECT_THROW(res.winners(), SolveException);
}

TEST(Sweep, WinnersRejectsPartialGrids)
{
    // One shard's un-merged slice has unevaluated cells; electing
    // winners from it would silently compare against
    // default-constructed results.
    SweepResult res;
    MvaResult r;
    r.speedup = 5.0;
    res.results = {{r, r}};
    res.errors.assign(1, std::vector<std::optional<SolveError>>(2));
    res.evaluated = {{1, 0}}; // cell (0, 1) belongs to another shard
    auto winners = res.tryWinners();
    ASSERT_FALSE(winners.ok());
    EXPECT_EQ(winners.error().code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(winners.error().message.find("never evaluated"),
              std::string::npos);
}

TEST(Sweep, SerialAndParallelAreBitIdentical)
{
    // The determinism contract at the sweep level: the value x
    // protocol grid must not change a single bit with thread count.
    SweepSpec spec = basicSpec();
    spec.values = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7};

    setParallelJobs(1);
    auto serial = runSweep(spec);
    for (unsigned jobs : {2u, 8u}) {
        setParallelJobs(jobs);
        auto parallel = runSweep(spec);
        ASSERT_EQ(parallel.results.size(), serial.results.size());
        for (size_t v = 0; v < serial.results.size(); ++v) {
            ASSERT_EQ(parallel.results[v].size(),
                      serial.results[v].size());
            for (size_t p = 0; p < serial.results[v].size(); ++p) {
                EXPECT_DOUBLE_EQ(parallel.results[v][p].speedup,
                                 serial.results[v][p].speedup)
                    << "jobs=" << jobs << " v=" << v << " p=" << p;
                EXPECT_DOUBLE_EQ(parallel.results[v][p].responseTime,
                                 serial.results[v][p].responseTime);
                EXPECT_DOUBLE_EQ(parallel.results[v][p].busUtil,
                                 serial.results[v][p].busUtil);
                EXPECT_EQ(parallel.results[v][p].iterations,
                          serial.results[v][p].iterations);
            }
        }
    }
    setParallelJobs(0);
}

TEST(Sweep, BadSpecsThrowStructuredErrors)
{
    SweepSpec spec = basicSpec();
    spec.set = nullptr;
    try {
        runSweep(spec);
        FAIL() << "expected SolveException";
    } catch (const SolveException &e) {
        EXPECT_EQ(e.error().code, SolveErrorCode::InvalidArgument);
        EXPECT_NE(std::string(e.what()).find("'set'"),
                  std::string::npos);
    }
    spec = basicSpec();
    spec.values.clear();
    auto bad = spec.validate();
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.error().message.find("'values'"), std::string::npos);
    EXPECT_THROW(runSweep(spec), SolveException);
    spec = basicSpec();
    spec.protocols.clear();
    EXPECT_THROW(runSweep(spec), SolveException);
    EXPECT_TRUE(basicSpec().validate().ok());
}

TEST(Sweep, BadValueBecomesErrorCell)
{
    // A single out-of-range value poisons only its own cells; the
    // sweep still completes and reports exactly which cells failed.
    SweepSpec spec = basicSpec();
    spec.values = {0.2, 1.5, 0.8}; // 1.5 is not a probability for h_sw
    testing::internal::CaptureStderr();
    auto res = runSweep(spec);
    std::string err = testing::internal::GetCapturedStderr();
    ASSERT_EQ(res.results.size(), 3u);
    EXPECT_EQ(res.failureCount(), 2u); // both protocols at v=1.5
    EXPECT_FALSE(res.cellFailed(0, 0));
    EXPECT_TRUE(res.cellFailed(1, 0));
    EXPECT_TRUE(res.cellFailed(1, 1));
    EXPECT_FALSE(res.cellFailed(2, 1));
    EXPECT_EQ(res.errors[1][0]->code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(res.errors[1][0]->message.find("hSw"), std::string::npos);
    // The end-of-run warning names the failures.
    EXPECT_NE(err.find("h_sw=1.5"), std::string::npos);
    // Healthy rows still elect winners; the failed row is skipped
    // per-cell (here every cell failed, so no winner).
    auto winners = res.winners();
    ASSERT_EQ(winners.size(), 3u);
    EXPECT_EQ(winners[1], SweepResult::kNoWinner);
    EXPECT_EQ(winners[0], 1u);
    // Rendering survives failed cells.
    EXPECT_NE(res.table().render().find("—"), std::string::npos);
    EXPECT_NE(res.csv().find("nan"), std::string::npos);
}

} // namespace
} // namespace snoop
