/** Unit tests for the markdown report generator. */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/report.hh"
#include "protocol/catalog.hh"

namespace snoop {
namespace {

ReportSpec
basicSpec()
{
    ReportSpec spec;
    spec.title = "Illinois on the 5% workload";
    spec.workload = presets::appendixA(SharingLevel::FivePercent);
    spec.protocol = *findProtocol("Illinois");
    spec.ns = {1, 4, 10};
    return spec;
}

TEST(Report, ContainsAllSections)
{
    auto md = generateReport(basicSpec());
    EXPECT_NE(md.find("# Illinois on the 5% workload"),
              std::string::npos);
    EXPECT_NE(md.find("## Protocol"), std::string::npos);
    EXPECT_NE(md.find("known as **Illinois**"), std::string::npos);
    EXPECT_NE(md.find("## Workload"), std::string::npos);
    EXPECT_NE(md.find("## Derived model inputs"), std::string::npos);
    EXPECT_NE(md.find("## Predicted performance"), std::string::npos);
    // validation skipped by default
    EXPECT_EQ(md.find("## Validation"), std::string::npos);
}

TEST(Report, SweepRowsMatchRequestedSizes)
{
    auto md = generateReport(basicSpec());
    EXPECT_NE(md.find("| 1 |"), std::string::npos);
    EXPECT_NE(md.find("| 4 |"), std::string::npos);
    EXPECT_NE(md.find("| 10 |"), std::string::npos);
    EXPECT_EQ(md.find("| 20 |"), std::string::npos);
}

TEST(Report, ModFlagsRendered)
{
    auto md = generateReport(basicSpec());
    EXPECT_NE(md.find("mod 1 (exclusive-on-miss): yes"),
              std::string::npos);
    EXPECT_NE(md.find("mod 2 (dirty cache supplies data): no"),
              std::string::npos);
    EXPECT_NE(md.find("mod 3 (invalidate instead of write-word): yes"),
              std::string::npos);
}

TEST(Report, ValidationSectionWhenRequested)
{
    auto spec = basicSpec();
    spec.ns = {1, 2, 8};
    spec.validateUpTo = 2;
    spec.measuredRequests = 30000;
    auto md = generateReport(spec);
    EXPECT_NE(md.find("## Validation against detailed simulation"),
              std::string::npos);
    EXPECT_NE(md.find("Max |relative error|"), std::string::npos);
    // only N <= validateUpTo rows get simulated: the sweep table has
    // N=8 but the validation table must not
    auto validation_at = md.find("## Validation");
    EXPECT_EQ(md.find("| 8 |", validation_at), std::string::npos);
}

TEST(Report, WritesToDisk)
{
    std::string path = testing::TempDir() + "snoop_report_test.md";
    writeReport(basicSpec(), path);
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("## Predicted performance"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(ReportDeath, BadSpecs)
{
    auto spec = basicSpec();
    spec.ns.clear();
    EXPECT_EXIT(generateReport(spec), testing::ExitedWithCode(1),
                "at least one");
    EXPECT_EXIT(writeReport(basicSpec(), "/nonexistent-dir-xyz/r.md"),
                testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace snoop
