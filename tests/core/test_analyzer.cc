/** Unit tests for the Analyzer facade. */

#include <gtest/gtest.h>

#include <cmath>

#include "core/analyzer.hh"
#include "util/fault.hh"

namespace snoop {
namespace {

TEST(Analyzer, AnalyzeByCatalogName)
{
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    auto r = a.analyze("Illinois", wl, 10);
    EXPECT_EQ(r.numProcessors, 10u);
    EXPECT_TRUE(r.inputs.protocol.mod1);
    EXPECT_TRUE(r.inputs.protocol.mod3);
    EXPECT_GT(r.speedup, 0.0);
}

TEST(Analyzer, AnalyzeByModString)
{
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    auto by_name = a.analyze("Berkeley", wl, 8);
    auto by_mods = a.analyze("23", wl, 8);
    EXPECT_DOUBLE_EQ(by_name.speedup, by_mods.speedup);
}

TEST(Analyzer, NameAndConfigAgree)
{
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::TwentyPercent);
    auto named = a.analyze("Dragon", wl, 12);
    auto cfg = a.analyze(*findProtocol("Dragon"), wl, 12);
    EXPECT_DOUBLE_EQ(named.speedup, cfg.speedup);
}

TEST(Analyzer, SweepReturnsAllSizes)
{
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    auto rs = a.sweep(ProtocolConfig::writeOnce(), wl, {1, 5, 25});
    ASSERT_EQ(rs.size(), 3u);
    EXPECT_EQ(rs[0].numProcessors, 1u);
    EXPECT_EQ(rs[2].numProcessors, 25u);
}

TEST(Analyzer, RankDesignSpaceCoversAll16Sorted)
{
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    auto ranked = a.rankDesignSpace(wl, 16);
    ASSERT_EQ(ranked.size(), 16u);
    for (size_t i = 1; i < ranked.size(); ++i)
        EXPECT_GE(ranked[i - 1].speedup, ranked[i].speedup);
    // all 16 distinct configurations present
    unsigned mask = 0;
    for (const auto &r : ranked)
        mask |= (1u << r.inputs.protocol.index());
    EXPECT_EQ(mask, 0xFFFFu);
}

TEST(Analyzer, DesignSpaceWinnerIncludesMod1)
{
    // Section 4.1: modification 1 is clearly advantageous; the best
    // configuration at a saturated size must include it.
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    auto ranked = a.rankDesignSpace(wl, 20);
    EXPECT_TRUE(ranked.front().inputs.protocol.mod1);
}

TEST(Analyzer, SaturationPointFindsTheKnee)
{
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    unsigned n95 = a.saturationPoint(ProtocolConfig::writeOnce(), wl);
    // Write-Once at 5% saturates around 10-12 processors (Fig 4.1).
    EXPECT_GE(n95, 8u);
    EXPECT_LE(n95, 16u);
    // Utilization at the returned N meets the target; below it doesn't.
    auto at = a.analyze(ProtocolConfig::writeOnce(), wl, n95);
    auto below = a.analyze(ProtocolConfig::writeOnce(), wl, n95 - 1);
    EXPECT_GE(at.busUtil, 0.95);
    EXPECT_LT(below.busUtil, 0.95);
}

TEST(Analyzer, SaturationPointZeroWhenUnreachable)
{
    Analyzer a;
    WorkloadParams wl = presets::appendixA(SharingLevel::FivePercent);
    wl.hPrivate = wl.hSro = wl.hSw = 1.0;
    wl.amodPrivate = wl.amodSw = 1.0;
    EXPECT_EQ(a.saturationPoint(ProtocolConfig::writeOnce(), wl), 0u);
}

TEST(Analyzer, BetterProtocolDeliversMoreAtItsKnee)
{
    // A protocol with less bus demand per request does not necessarily
    // saturate at a larger N (it also cycles faster), but it must
    // deliver more speedup at its own saturation point.
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    unsigned wo_n = a.saturationPoint(ProtocolConfig::writeOnce(), wl);
    unsigned m1_n = a.saturationPoint(ProtocolConfig::fromModString("1"),
                                      wl);
    ASSERT_GT(wo_n, 0u);
    ASSERT_GT(m1_n, 0u);
    double wo_s =
        a.analyze(ProtocolConfig::writeOnce(), wl, wo_n).speedup;
    double m1_s =
        a.analyze(ProtocolConfig::fromModString("1"), wl, m1_n).speedup;
    EXPECT_GT(m1_s, wo_s);
}

TEST(Analyzer, CustomTimingFlowsThrough)
{
    BusTiming slow;
    slow.tReadMem = 30.0;
    Analyzer a({}, slow);
    Analyzer b;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    EXPECT_LT(a.analyze("WriteOnce", wl, 8).speedup,
              b.analyze("WriteOnce", wl, 8).speedup);
}

TEST(Analyzer, UnknownProtocolIsAnError)
{
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    auto r = a.tryAnalyze("firefly", wl, 4);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::UnknownProtocol);
    EXPECT_NE(r.error().message.find("unknown protocol"),
              std::string::npos);
    // The throwing facade surfaces the same error as an exception.
    EXPECT_THROW(a.analyze("firefly", wl, 4), SolveException);
}

TEST(Analyzer, BadWorkloadIsAnError)
{
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    wl.hSw = 1.5;
    auto r = a.tryAnalyze(ProtocolConfig::writeOnce(), wl, 4);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(r.error().message.find("hSw"), std::string::npos);
    // The context frame names the enclosing operation.
    ASSERT_FALSE(r.error().context.empty());
    EXPECT_NE(r.error().context.front().find("tryAnalyze"),
              std::string::npos);
}

TEST(Analyzer, BadSaturationTargetThrows)
{
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    try {
        a.saturationPoint(ProtocolConfig::writeOnce(), wl, 1.5);
        FAIL() << "expected SolveException";
    } catch (const SolveException &e) {
        EXPECT_EQ(e.error().code, SolveErrorCode::InvalidArgument);
        EXPECT_NE(std::string(e.what()).find("target"),
                  std::string::npos);
    }
}

TEST(Analyzer, NaNSaturationTargetIsRejected)
{
    // A NaN target fails every comparison, so the old
    // `target <= 0 || target > 1` form waved it into the binary
    // search; the !(target > 0 && target <= 1) form must reject it.
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    auto r = a.trySaturationPoint(ProtocolConfig::writeOnce(), wl,
                                  std::nan(""));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(r.error().message.find("target"), std::string::npos);
}

TEST(Analyzer, ZeroSaturationLimitIsRejected)
{
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    auto r = a.trySaturationPoint(ProtocolConfig::writeOnce(), wl,
                                  0.95, 0);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(r.error().message.find("limit"), std::string::npos);
}

TEST(Analyzer, TrySaturationPointMatchesTheThrowingFacade)
{
    Analyzer a;
    auto wl = presets::appendixA(SharingLevel::TwentyPercent);
    auto protocol = ProtocolConfig::writeOnce();
    auto r = a.trySaturationPoint(protocol, wl, 0.9, 256);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r.value(), 1u);
    EXPECT_EQ(r.value(), a.saturationPoint(protocol, wl, 0.9, 256));
}

TEST(Analyzer, FaultedSaturationProbeIsOneStructuredError)
{
    // Under Fatal policy a probe solve that never converges must come
    // back as an error naming the probe, not abort the process.
    MvaOptions opts;
    opts.onNonConvergence = NonConvergencePolicy::Fatal;
    Analyzer a(opts);
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    ASSERT_TRUE(bool(setFaultSpecs("mva.nonconverge:every=1")));
    auto r = a.trySaturationPoint(ProtocolConfig::writeOnce(), wl,
                                  0.95, 64);
    clearFaultSpecs();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::NonConvergence);
    bool probe_frame = false;
    for (const auto &frame : r.error().context)
        probe_frame |= frame.find("probe") != std::string::npos;
    EXPECT_TRUE(probe_frame);
}

} // namespace
} // namespace snoop
