/**
 * Tests for the canonicalized solution cache: key quantization
 * (sub-quantum perturbations collapse, -0.0 equals +0.0, NaN is
 * rejected at admission), LRU bookkeeping, and the deterministic
 * nearest-neighbor scan that feeds warm-start seeds.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "serve/cache.hh"

namespace snoop {
namespace {

WorkloadParams
baseWorkload()
{
    return presets::appendixA(SharingLevel::FivePercent);
}

CacheKey
key(const WorkloadParams &wl, unsigned n = 8,
    double quantum = 1e-9)
{
    auto k = canonicalKey(ProtocolConfig::writeOnce(), wl, n, quantum);
    EXPECT_TRUE(bool(k));
    return k ? k.value() : CacheKey{};
}

MvaResult
resultWith(double speedup)
{
    MvaResult r;
    r.speedup = speedup;
    r.wBus = 1.0;
    r.wMem = 0.5;
    r.responseTime = 4.0;
    return r;
}

TEST(ServeCache, SubQuantumPerturbationsShareOneKey)
{
    auto wl = baseWorkload();
    auto a = key(wl);
    wl.hSw += 1e-12; // far below the 1e-9 grid
    auto b = key(wl);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(CacheKeyHash{}(a), CacheKeyHash{}(b));
}

TEST(ServeCache, SupraQuantumPerturbationsSeparate)
{
    auto wl = baseWorkload();
    auto a = key(wl);
    wl.hSw += 1e-6;
    EXPECT_FALSE(a == key(wl));
}

TEST(ServeCache, NegativeZeroCollapsesToPositiveZero)
{
    auto wl = baseWorkload();
    wl.repSw = 0.0;
    auto a = key(wl);
    wl.repSw = -0.0;
    auto b = key(wl);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(CacheKeyHash{}(a), CacheKeyHash{}(b));
}

TEST(ServeCache, NonFiniteFieldsAreRejectedByName)
{
    auto wl = baseWorkload();
    wl.hSw = std::nan("");
    auto k = canonicalKey(ProtocolConfig::writeOnce(), wl, 8, 1e-9);
    ASSERT_FALSE(bool(k));
    EXPECT_EQ(k.error().code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(k.error().message.find("hSw"), std::string::npos);

    wl = baseWorkload();
    wl.tau = INFINITY;
    k = canonicalKey(ProtocolConfig::writeOnce(), wl, 8, 1e-9);
    ASSERT_FALSE(bool(k));
    EXPECT_NE(k.error().message.find("tau"), std::string::npos);
}

TEST(ServeCache, ZeroProcessorsAndBadQuantumAreRejected)
{
    auto wl = baseWorkload();
    EXPECT_FALSE(bool(
        canonicalKey(ProtocolConfig::writeOnce(), wl, 0, 1e-9)));
    EXPECT_FALSE(bool(
        canonicalKey(ProtocolConfig::writeOnce(), wl, 8, 0.0)));
    EXPECT_FALSE(bool(
        canonicalKey(ProtocolConfig::writeOnce(), wl, 8, -1e-9)));
}

TEST(ServeCache, DistinctProtocolsAndSizesSeparate)
{
    auto wl = baseWorkload();
    auto a = canonicalKey(ProtocolConfig::writeOnce(), wl, 8, 1e-9)
                 .value();
    auto b = canonicalKey(ProtocolConfig::fromModString("1"), wl, 8,
                          1e-9)
                 .value();
    auto c = canonicalKey(ProtocolConfig::writeOnce(), wl, 9, 1e-9)
                 .value();
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(ServeCache, FindReturnsInsertedResult)
{
    SolutionCache cache(4);
    auto k = key(baseWorkload());
    EXPECT_EQ(cache.find(k), nullptr);
    cache.insert(k, resultWith(3.0));
    ASSERT_NE(cache.find(k), nullptr);
    EXPECT_EQ(cache.find(k)->speedup, 3.0);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ServeCache, InsertOverwritesExistingKey)
{
    SolutionCache cache(4);
    auto k = key(baseWorkload());
    cache.insert(k, resultWith(1.0));
    cache.insert(k, resultWith(2.0));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.find(k)->speedup, 2.0);
}

TEST(ServeCache, LruEvictionDropsLeastRecentlyUsed)
{
    SolutionCache cache(2);
    auto wl = baseWorkload();
    auto k1 = key(wl, 1);
    auto k2 = key(wl, 2);
    auto k3 = key(wl, 3);
    cache.insert(k1, resultWith(1.0));
    cache.insert(k2, resultWith(2.0));
    // Touch k1 so k2 becomes the LRU victim.
    EXPECT_NE(cache.find(k1), nullptr);
    cache.insert(k3, resultWith(3.0));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.find(k2), nullptr);
    EXPECT_NE(cache.find(k1), nullptr);
    EXPECT_NE(cache.find(k3), nullptr);
}

TEST(ServeCache, NearestPicksClosestSameProtocolEntry)
{
    SolutionCache cache(8);
    auto wl = baseWorkload();
    auto near = wl;
    near.hSw += 1e-3;
    auto far = wl;
    far.hSw += 0.2;
    cache.insert(key(far), resultWith(7.0));
    MvaResult near_result = resultWith(5.0);
    near_result.wBus = 2.5;
    near_result.responseTime = 6.0;
    cache.insert(key(near), near_result);

    auto seed = cache.nearest(key(wl));
    ASSERT_TRUE(seed.has_value());
    EXPECT_EQ(seed->wBus, 2.5);
    EXPECT_EQ(seed->rTotal, 6.0);
}

TEST(ServeCache, NearestExcludesExactMatchAndOtherProtocols)
{
    SolutionCache cache(8);
    auto wl = baseWorkload();
    auto exact = key(wl);
    cache.insert(exact, resultWith(1.0));
    // The only entry is the exact match: no neighbor.
    EXPECT_FALSE(cache.nearest(exact).has_value());

    // An entry under a different protocol never seeds this one.
    auto other = canonicalKey(ProtocolConfig::fromModString("1"), wl,
                              8, 1e-9)
                     .value();
    cache.insert(other, resultWith(2.0));
    EXPECT_FALSE(cache.nearest(exact).has_value());
}

TEST(ServeCache, NearestOnEmptyCacheIsEmpty)
{
    SolutionCache cache(8);
    EXPECT_FALSE(cache.nearest(key(baseWorkload())).has_value());
}

TEST(ServeCache, ClearDropsEntriesKeepsCounters)
{
    SolutionCache cache(1);
    auto wl = baseWorkload();
    cache.insert(key(wl, 1), resultWith(1.0));
    cache.insert(key(wl, 2), resultWith(2.0)); // evicts
    EXPECT_EQ(cache.evictions(), 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.find(key(wl, 2)), nullptr);
}

} // namespace
} // namespace snoop
