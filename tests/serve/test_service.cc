/**
 * Tests for the SolveService batch engine: exact-hit memoization,
 * warm-start continuation (fewer fixed-point iterations, agreement
 * with the cold answer), the determinism contract across thread
 * counts, per-request admission control (budgets), deterministic
 * fault isolation, and the non-solve ops (saturation, rank, sweep,
 * stats, shutdown).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "serve/service.hh"
#include "util/fault.hh"
#include "util/parallel.hh"

namespace snoop {
namespace {

Request
analyzeReq(int64_t id, double hsw, unsigned n = 16)
{
    Request req;
    req.id = id;
    req.op = RequestOp::Analyze;
    req.protocol = ProtocolConfig::fromModString("13"); // Illinois
    req.workload = presets::appendixA(SharingLevel::FivePercent);
    req.workload.hSw = hsw;
    req.n = n;
    return req;
}

double
field(const JsonValue &response, const char *name)
{
    const JsonValue *result = response.get("result");
    EXPECT_NE(result, nullptr);
    const JsonValue *v = result ? result->get(name) : nullptr;
    EXPECT_NE(v, nullptr) << name;
    return v && v->isNumber() ? v->asNumber() : std::nan("");
}

bool
flag(const JsonValue &response, const char *name)
{
    const JsonValue *result = response.get("result");
    const JsonValue *v = result ? result->get(name) : nullptr;
    return v != nullptr && v->isBool() && v->asBool();
}

TEST(ServeService, RepeatQueryIsAnExactHit)
{
    SolveService service;
    auto first = service.handle(analyzeReq(1, 0.5));
    auto second = service.handle(analyzeReq(2, 0.5));
    EXPECT_TRUE(first.get("ok")->asBool());
    EXPECT_FALSE(flag(first, "cached"));
    EXPECT_TRUE(flag(second, "cached"));
    // The hit replays the stored solution bit-for-bit.
    EXPECT_EQ(field(first, "responseTime"),
              field(second, "responseTime"));
    EXPECT_EQ(field(first, "speedup"), field(second, "speedup"));
    EXPECT_EQ(service.cache().size(), 1u);
}

TEST(ServeService, SubQuantumPerturbationStillHits)
{
    SolveService service;
    service.handle(analyzeReq(1, 0.5));
    auto hit = service.handle(analyzeReq(2, 0.5 + 1e-12));
    EXPECT_TRUE(flag(hit, "cached"));
}

TEST(ServeService, NoCacheBypassesLookupAndInsertion)
{
    SolveService service;
    Request req = analyzeReq(1, 0.5);
    req.noCache = true;
    service.handle(req);
    EXPECT_EQ(service.cache().size(), 0u);
    auto again = service.handle(req);
    EXPECT_FALSE(flag(again, "cached"));
}

TEST(ServeService, WarmStartConvergesInFewerIterationsAndAgrees)
{
    // Cold baseline for the perturbed query, on its own service.
    Request probe = analyzeReq(1, 0.501);
    probe.noWarmStart = true;
    SolveService cold_service;
    auto cold = cold_service.handle(probe);
    double cold_iters = field(cold, "iterations");
    EXPECT_FALSE(flag(cold, "warmStarted"));

    // Same query warm-started from the cached 0.5 neighbor.
    SolveService service;
    service.handle(analyzeReq(1, 0.5));
    auto warm = service.handle(analyzeReq(2, 0.501));
    EXPECT_TRUE(flag(warm, "warmStarted"));
    EXPECT_FALSE(flag(warm, "cached"));
    EXPECT_LT(field(warm, "iterations"), cold_iters);

    // The continuation lands on the same fixed point within the
    // documented envelope (docs/SERVING.md): the tolerance-limited
    // answers agree to ~1e-6 relative; 1e-5 is asserted.
    for (const char *name : {"responseTime", "speedup", "busUtil"}) {
        double a = field(cold, name), b = field(warm, name);
        EXPECT_NEAR(a, b, 1e-5 * std::fabs(a)) << name;
    }
}

TEST(ServeService, NoWarmStartForcesColdSolve)
{
    SolveService service;
    service.handle(analyzeReq(1, 0.5));
    Request req = analyzeReq(2, 0.501);
    req.noWarmStart = true;
    auto r = service.handle(req);
    EXPECT_FALSE(flag(r, "warmStarted"));
}

TEST(ServeService, BatchResponsesAreIdenticalAtAnyThreadCount)
{
    std::vector<Request> batch;
    for (int i = 0; i < 6; ++i)
        batch.push_back(analyzeReq(i, 0.48 + 0.01 * i));
    Request rank;
    rank.id = 90;
    rank.op = RequestOp::Rank;
    rank.workload = presets::appendixA(SharingLevel::TwentyPercent);
    rank.n = 16;
    batch.push_back(rank);
    Request sweep;
    sweep.id = 91;
    sweep.op = RequestOp::Sweep;
    sweep.protocol = ProtocolConfig::writeOnce();
    sweep.workload = presets::appendixA(SharingLevel::OnePercent);
    sweep.ns = {1, 2, 4, 8, 16};
    batch.push_back(sweep);

    auto transcript = [&](unsigned jobs) {
        setParallelJobs(jobs);
        SolveService service;
        std::string out;
        // Two passes: the second hits the cache warm - both must be
        // schedule-independent.
        for (int pass = 0; pass < 2; ++pass)
            for (const JsonValue &r : service.handleBatch(batch))
                out += serializeJson(r) + "\n";
        return out;
    };
    std::string serial = transcript(1);
    std::string parallel = transcript(8);
    setParallelJobs(0);
    EXPECT_EQ(serial, parallel);
}

TEST(ServeService, InjectedFaultIsIsolatedToItsRequest)
{
    ASSERT_TRUE(bool(setFaultSpecs("serve.request:every=2")));
    SolveService service;
    std::vector<Request> batch;
    for (int64_t id = 1; id <= 4; ++id)
        batch.push_back(analyzeReq(id, 0.4 + 0.02 * id));
    auto responses = service.handleBatch(batch);
    clearFaultSpecs();
    ASSERT_EQ(responses.size(), 4u);
    for (size_t i = 0; i < responses.size(); ++i) {
        int64_t id = batch[i].id;
        bool ok = responses[i].get("ok")->asBool();
        EXPECT_EQ(ok, id % 2 != 0) << "id " << id;
        if (!ok) {
            const JsonValue *code =
                responses[i].get("error")->get("code");
            EXPECT_EQ(code->asString(), "injected-fault");
        }
    }
    // Faulted cells must not poison the cache.
    EXPECT_EQ(service.cache().size(), 2u);
}

TEST(ServeService, IterationBudgetBecomesStructuredError)
{
    SolveService service;
    Request req = analyzeReq(1, 0.5, 64);
    req.iterationBudget = 3;
    auto r = service.handle(req);
    ASSERT_FALSE(r.get("ok")->asBool());
    EXPECT_EQ(r.get("error")->get("code")->asString(),
              "budget-exhausted");
    EXPECT_EQ(service.cache().size(), 0u);
}

TEST(ServeService, ServiceCeilingClampsRequestBudgets)
{
    ServeOptions opts;
    opts.maxIterationBudget = 3;
    SolveService service(opts);
    Request req = analyzeReq(1, 0.5, 64);
    req.iterationBudget = 1000000; // cannot exceed the ceiling
    auto r = service.handle(req);
    ASSERT_FALSE(r.get("ok")->asBool());
    EXPECT_EQ(r.get("error")->get("code")->asString(),
              "budget-exhausted");
}

TEST(ServeService, SaturationRankSweepAndStats)
{
    SolveService service;

    Request sat;
    sat.id = 1;
    sat.op = RequestOp::Saturation;
    sat.protocol = ProtocolConfig::fromModString("13");
    sat.workload = presets::appendixA(SharingLevel::TwentyPercent);
    sat.target = 0.9;
    sat.limit = 256;
    auto r = service.handle(sat);
    ASSERT_TRUE(r.get("ok")->asBool());
    EXPECT_TRUE(flag(r, "found"));
    EXPECT_GE(field(r, "n"), 1.0);

    Request rank;
    rank.id = 2;
    rank.op = RequestOp::Rank;
    rank.workload = presets::appendixA(SharingLevel::FivePercent);
    rank.n = 16;
    r = service.handle(rank);
    ASSERT_TRUE(r.get("ok")->asBool());
    const auto &ranking =
        r.get("result")->get("ranking")->asArray();
    ASSERT_EQ(ranking.size(), 16u);
    for (size_t i = 1; i < ranking.size(); ++i) {
        EXPECT_GE(ranking[i - 1].get("speedup")->asNumber(),
                  ranking[i].get("speedup")->asNumber());
    }

    Request sweep;
    sweep.id = 3;
    sweep.op = RequestOp::Sweep;
    sweep.protocol = ProtocolConfig::writeOnce();
    sweep.workload = presets::appendixA(SharingLevel::FivePercent);
    sweep.ns = {2, 4, 8};
    r = service.handle(sweep);
    ASSERT_TRUE(r.get("ok")->asBool());
    EXPECT_EQ(r.get("result")->get("cells")->asArray().size(), 3u);

    Request stats;
    stats.id = 4;
    stats.op = RequestOp::Stats;
    r = service.handle(stats);
    ASSERT_TRUE(r.get("ok")->asBool());
    // 16 rank cells + 3 sweep cells are cached by now.
    EXPECT_EQ(r.get("result")->get("cache")->get("size")->asNumber(),
              19.0);
}

TEST(ServeService, InvalidWorkloadFailsAdmission)
{
    SolveService service;
    Request req = analyzeReq(1, 2.0); // hSw > 1 fails check()
    auto r = service.handle(req);
    ASSERT_FALSE(r.get("ok")->asBool());
    EXPECT_EQ(r.get("error")->get("code")->asString(),
              "invalid-argument");
    EXPECT_EQ(service.cache().size(), 0u);
}

} // namespace
} // namespace snoop
