/**
 * Tests for the serve layer's line-delimited JSON codec: round trips,
 * deterministic serialization (sorted keys, shortest round-trip
 * numbers, integers as integers), structured parse errors with byte
 * offsets, escape handling including surrogate pairs, the depth
 * bound, and the non-finite-number rejection the admission contract
 * relies on.
 */

#include <gtest/gtest.h>

#include "serve/json.hh"

namespace snoop {
namespace {

JsonValue
parsed(const std::string &text)
{
    auto v = parseJson(text);
    EXPECT_TRUE(bool(v)) << text;
    return v ? std::move(v).value() : JsonValue();
}

TEST(ServeJson, RoundTripsScalars)
{
    EXPECT_EQ(serializeJson(parsed("null")), "null");
    EXPECT_EQ(serializeJson(parsed("true")), "true");
    EXPECT_EQ(serializeJson(parsed("false")), "false");
    EXPECT_EQ(serializeJson(parsed("42")), "42");
    EXPECT_EQ(serializeJson(parsed("-1.5")), "-1.5");
    EXPECT_EQ(serializeJson(parsed("\"hi\"")), "\"hi\"");
}

TEST(ServeJson, IntegersStayIntegers)
{
    // %.1g would print 30 as "3e+01", which round-trips but reads
    // badly in response logs; the serializer special-cases integers.
    EXPECT_EQ(serializeJson(JsonValue(30)), "30");
    EXPECT_EQ(serializeJson(JsonValue(1e6)), "1000000");
    EXPECT_EQ(serializeJson(JsonValue(-7.0)), "-7");
}

TEST(ServeJson, NumbersRoundTripShortest)
{
    // The shortest form that parses back to the same bits.
    double v = 0.1;
    auto r = parseJson(serializeJson(JsonValue(v)));
    ASSERT_TRUE(bool(r));
    EXPECT_EQ(r.value().asNumber(), v);
    EXPECT_EQ(serializeJson(JsonValue(0.1)), "0.1");
}

TEST(ServeJson, ObjectKeysSerializeSorted)
{
    auto v = parsed("{\"b\":1,\"a\":2,\"c\":3}");
    EXPECT_EQ(serializeJson(v), "{\"a\":2,\"b\":1,\"c\":3}");
}

TEST(ServeJson, NestedStructuresRoundTrip)
{
    std::string text =
        "{\"a\":[1,2,{\"b\":null}],\"c\":{\"d\":[true,false]}}";
    EXPECT_EQ(serializeJson(parsed(text)), text);
}

TEST(ServeJson, StringEscapesRoundTrip)
{
    auto v = parsed("\"line\\nquote\\\"tab\\tback\\\\slash\\/\"");
    EXPECT_EQ(v.asString(), "line\nquote\"tab\tback\\slash/");
    auto again = parseJson(serializeJson(v));
    ASSERT_TRUE(bool(again));
    EXPECT_EQ(again.value().asString(), v.asString());
}

TEST(ServeJson, UnicodeEscapesDecodeToUtf8)
{
    EXPECT_EQ(parsed("\"\\u0041\"").asString(), "A");
    EXPECT_EQ(parsed("\"\\u00e9\"").asString(), "\xc3\xa9");
    // Surrogate pair: U+1F600.
    EXPECT_EQ(parsed("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(ServeJson, UnpairedSurrogateIsRejected)
{
    EXPECT_FALSE(bool(parseJson("\"\\ud83d\"")));
    EXPECT_FALSE(bool(parseJson("\"\\ud83dx\"")));
}

TEST(ServeJson, ControlCharactersEscapeOnOutput)
{
    // Split the literal: "\x01b" would be one hex escape (0x1B).
    JsonValue v(std::string("a\x01"
                            "b"));
    EXPECT_EQ(serializeJson(v), "\"a\\u0001b\"");
}

TEST(ServeJson, ParseErrorsCarryByteOffsets)
{
    auto r = parseJson("{\"a\": }");
    ASSERT_FALSE(bool(r));
    EXPECT_EQ(r.error().code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(r.error().message.find("at byte"), std::string::npos);
}

TEST(ServeJson, TrailingGarbageIsRejected)
{
    EXPECT_FALSE(bool(parseJson("{} trailing")));
    EXPECT_FALSE(bool(parseJson("1 2")));
}

TEST(ServeJson, NonFiniteNumbersAreRejected)
{
    // JSON has no NaN/inf literal; an overflowing exponent is the
    // only route to a non-finite double, and it must not parse.
    EXPECT_FALSE(bool(parseJson("1e999")));
    EXPECT_FALSE(bool(parseJson("[-1e999]")));
    EXPECT_FALSE(bool(parseJson("nan")));
    EXPECT_FALSE(bool(parseJson("Infinity")));
}

TEST(ServeJson, DepthBoundRejectsRunawayNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    EXPECT_FALSE(bool(parseJson(deep)));
    // 32 levels is comfortably inside the bound.
    std::string ok(32, '[');
    ok += std::string(32, ']');
    EXPECT_TRUE(bool(parseJson(ok)));
}

TEST(ServeJson, AccessorsAndLookup)
{
    auto v = parsed("{\"x\":1,\"y\":[true]}");
    ASSERT_TRUE(v.isObject());
    ASSERT_NE(v.get("x"), nullptr);
    EXPECT_EQ(v.get("x")->asNumber(), 1.0);
    EXPECT_EQ(v.get("missing"), nullptr);
    ASSERT_TRUE(v.get("y")->isArray());
    EXPECT_TRUE(v.get("y")->asArray()[0].asBool());
}

} // namespace
} // namespace snoop
