/**
 * Tests for the snoop_serve wire protocol: request parsing and
 * validation (ops, protocols, presets, workload overrides, budgets,
 * the NaN-proof saturation target), the batch envelope, id recovery
 * from malformed lines, and the response envelopes.
 */

#include <gtest/gtest.h>

#include "serve/protocol.hh"

namespace snoop {
namespace {

Expected<Request>
parse(const std::string &text)
{
    auto doc = parseJson(text);
    EXPECT_TRUE(bool(doc)) << text;
    if (!doc)
        return std::move(doc).error();
    return parseRequest(doc.value());
}

TEST(ServeProtocol, ParsesMinimalAnalyze)
{
    auto r = parse("{\"id\":7,\"op\":\"analyze\","
                   "\"protocol\":\"Illinois\",\"n\":8}");
    ASSERT_TRUE(bool(r));
    EXPECT_EQ(r.value().id, 7);
    EXPECT_EQ(r.value().op, RequestOp::Analyze);
    EXPECT_EQ(r.value().n, 8u);
    EXPECT_FALSE(r.value().noCache);
    EXPECT_FALSE(r.value().noWarmStart);
}

TEST(ServeProtocol, PresetAndOverridesApply)
{
    auto r = parse("{\"op\":\"analyze\",\"protocol\":\"Illinois\","
                   "\"preset\":\"appendixA5\","
                   "\"workload\":{\"hSw\":0.61},\"n\":4}");
    ASSERT_TRUE(bool(r));
    EXPECT_EQ(r.value().workload.hSw, 0.61);
}

TEST(ServeProtocol, RejectsUnknownOpPresetFieldAndProtocol)
{
    auto r = parse("{\"op\":\"frobnicate\"}");
    ASSERT_FALSE(bool(r));
    EXPECT_NE(r.error().message.find("frobnicate"), std::string::npos);

    r = parse("{\"op\":\"analyze\",\"protocol\":\"Illinois\","
              "\"preset\":\"bogus\",\"n\":4}");
    ASSERT_FALSE(bool(r));
    EXPECT_NE(r.error().message.find("bogus"), std::string::npos);

    r = parse("{\"op\":\"analyze\",\"protocol\":\"Illinois\","
              "\"workload\":{\"noSuchKnob\":1},\"n\":4}");
    ASSERT_FALSE(bool(r));
    EXPECT_NE(r.error().message.find("noSuchKnob"), std::string::npos);

    r = parse("{\"op\":\"analyze\",\"protocol\":\"NotAProtocol\","
              "\"n\":4}");
    ASSERT_FALSE(bool(r));
    EXPECT_EQ(r.error().code, SolveErrorCode::UnknownProtocol);
}

TEST(ServeProtocol, RequiresNForAnalyzeAndRank)
{
    EXPECT_FALSE(bool(
        parse("{\"op\":\"analyze\",\"protocol\":\"Illinois\"}")));
    EXPECT_FALSE(bool(parse("{\"op\":\"rank\"}")));
    EXPECT_TRUE(bool(parse("{\"op\":\"rank\",\"n\":8}")));
}

TEST(ServeProtocol, ValidatesNRange)
{
    EXPECT_FALSE(bool(parse(
        "{\"op\":\"analyze\",\"protocol\":\"Illinois\",\"n\":0}")));
    EXPECT_FALSE(bool(parse(
        "{\"op\":\"analyze\",\"protocol\":\"Illinois\",\"n\":2.5}")));
    EXPECT_FALSE(bool(parse("{\"op\":\"analyze\","
                            "\"protocol\":\"Illinois\","
                            "\"n\":99999999}")));
}

TEST(ServeProtocol, SweepNeedsNonEmptyIntegerNs)
{
    EXPECT_FALSE(bool(
        parse("{\"op\":\"sweep\",\"protocol\":\"Illinois\"}")));
    EXPECT_FALSE(bool(parse("{\"op\":\"sweep\","
                            "\"protocol\":\"Illinois\",\"ns\":[]}")));
    EXPECT_FALSE(bool(parse(
        "{\"op\":\"sweep\",\"protocol\":\"Illinois\",\"ns\":[1,0]}")));
    auto r = parse(
        "{\"op\":\"sweep\",\"protocol\":\"Illinois\",\"ns\":[1,4,16]}");
    ASSERT_TRUE(bool(r));
    EXPECT_EQ(r.value().ns, (std::vector<unsigned>{1, 4, 16}));
}

TEST(ServeProtocol, SaturationTargetIsNaNProof)
{
    // The wire cannot carry a NaN literal, but the boundary values
    // exercise the same !(target > 0 && target <= 1) form that
    // rejects it (Analyzer::trySaturationPoint).
    EXPECT_FALSE(bool(parse("{\"op\":\"saturation\","
                            "\"protocol\":\"Illinois\","
                            "\"target\":0}")));
    EXPECT_FALSE(bool(parse("{\"op\":\"saturation\","
                            "\"protocol\":\"Illinois\","
                            "\"target\":1.5}")));
    EXPECT_FALSE(bool(parse("{\"op\":\"saturation\","
                            "\"protocol\":\"Illinois\","
                            "\"target\":-1}")));
    auto r = parse("{\"op\":\"saturation\",\"protocol\":\"Illinois\","
                   "\"target\":0.9,\"limit\":128}");
    ASSERT_TRUE(bool(r));
    EXPECT_EQ(r.value().target, 0.9);
    EXPECT_EQ(r.value().limit, 128u);
}

TEST(ServeProtocol, BudgetsAndCacheFlagsParse)
{
    auto r = parse("{\"op\":\"analyze\",\"protocol\":\"Illinois\","
                   "\"n\":4,\"timeBudget\":0.5,"
                   "\"iterationBudget\":100,\"noCache\":true,"
                   "\"noWarmStart\":true}");
    ASSERT_TRUE(bool(r));
    EXPECT_EQ(r.value().timeBudget, 0.5);
    EXPECT_EQ(r.value().iterationBudget, 100);
    EXPECT_TRUE(r.value().noCache);
    EXPECT_TRUE(r.value().noWarmStart);

    EXPECT_FALSE(bool(parse("{\"op\":\"analyze\","
                            "\"protocol\":\"Illinois\",\"n\":4,"
                            "\"timeBudget\":-1}")));
    EXPECT_FALSE(bool(parse("{\"op\":\"analyze\","
                            "\"protocol\":\"Illinois\",\"n\":4,"
                            "\"iterationBudget\":2.5}")));
}

TEST(ServeProtocol, StatsAndShutdownNeedNothingElse)
{
    EXPECT_TRUE(bool(parse("{\"op\":\"stats\"}")));
    EXPECT_TRUE(bool(parse("{\"op\":\"shutdown\"}")));
}

TEST(ServeProtocol, BatchEnvelopeFlattensInWireOrder)
{
    auto rs = parseRequestLine(
        "{\"op\":\"batch\",\"requests\":["
        "{\"id\":1,\"op\":\"analyze\",\"protocol\":\"Illinois\","
        "\"n\":4},"
        "{\"id\":2,\"op\":\"stats\"}]}");
    ASSERT_TRUE(bool(rs));
    ASSERT_EQ(rs.value().size(), 2u);
    EXPECT_EQ(rs.value()[0].id, 1);
    EXPECT_EQ(rs.value()[1].op, RequestOp::Stats);
}

TEST(ServeProtocol, BatchRejectsShutdownAndEmptyLists)
{
    EXPECT_FALSE(bool(parseRequestLine(
        "{\"op\":\"batch\",\"requests\":[]}")));
    auto rs = parseRequestLine(
        "{\"op\":\"batch\",\"requests\":[{\"op\":\"shutdown\"}]}");
    ASSERT_FALSE(bool(rs));
    EXPECT_NE(rs.error().message.find("shutdown"), std::string::npos);
}

TEST(ServeProtocol, RecoverRequestIdBestEffort)
{
    EXPECT_EQ(recoverRequestId("{\"id\":42,\"op\":\"bogus\"}"), 42);
    EXPECT_EQ(recoverRequestId("{nope"), 0);
    EXPECT_EQ(recoverRequestId("{\"op\":\"analyze\"}"), 0);
}

TEST(ServeProtocol, ResponseEnvelopes)
{
    auto err = makeError(SolveErrorCode::InvalidArgument, "here",
                         "went wrong");
    std::string line =
        serializeJson(errorResponse(3, err.withContext("ctx")));
    EXPECT_NE(line.find("\"id\":3"), std::string::npos);
    EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(line.find("\"code\":\"invalid-argument\""),
              std::string::npos);
    EXPECT_NE(line.find("\"context\":[\"ctx\"]"), std::string::npos);

    std::string ok = serializeJson(
        okResponse(4, RequestOp::Analyze, JsonValue(1.5)));
    EXPECT_EQ(ok,
              "{\"id\":4,\"ok\":true,\"op\":\"analyze\","
              "\"result\":1.5}");
}

} // namespace
} // namespace snoop
