/** Unit tests for the ASCII chart renderer. */

#include <gtest/gtest.h>

#include "util/chart.hh"

namespace snoop {
namespace {

ChartSeries
line(const std::string &label, char marker, std::vector<double> xs,
     std::vector<double> ys)
{
    ChartSeries s;
    s.label = label;
    s.marker = marker;
    s.x = std::move(xs);
    s.y = std::move(ys);
    return s;
}

TEST(Chart, RendersMarkersAndLegend)
{
    auto out = renderChart(
        {line("up", '*', {0, 1, 2}, {0, 1, 2})});
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find("* = up"), std::string::npos);
}

TEST(Chart, AxisLabelsAppear)
{
    ChartOptions opt;
    opt.xLabel = "processors";
    opt.yLabel = "speedup";
    auto out = renderChart(
        {line("s", 'o', {1, 10}, {1, 5})}, opt);
    EXPECT_NE(out.find("processors"), std::string::npos);
    EXPECT_NE(out.find("speedup"), std::string::npos);
}

TEST(Chart, MonotoneSeriesRisesLeftToRight)
{
    ChartOptions opt;
    opt.width = 40;
    opt.height = 10;
    auto out = renderChart(
        {line("s", '*', {0, 1}, {0, 10})}, opt);
    // split into rows and find the column of '*' in top and bottom
    // plot rows: the topmost '*' must be right of the bottommost.
    std::vector<std::string> rows;
    size_t pos = 0;
    while (pos < out.size()) {
        size_t nl = out.find('\n', pos);
        rows.push_back(out.substr(pos, nl - pos));
        pos = nl + 1;
    }
    long first_star_row = -1, last_star_row = -1;
    size_t first_col = 0, last_col = 0;
    for (size_t r = 0; r < rows.size(); ++r) {
        auto c = rows[r].find('*');
        if (c == std::string::npos || rows[r].find("* = s") != std::string::npos)
            continue;
        if (first_star_row < 0) {
            first_star_row = static_cast<long>(r);
            first_col = c;
        }
        last_star_row = static_cast<long>(r);
        last_col = rows[r].rfind('*') == c ? c : rows[r].rfind('*');
        (void)last_col;
    }
    ASSERT_GE(first_star_row, 0);
    // top row of the rising line is at larger x than bottom row
    auto bottom_col = rows[static_cast<size_t>(last_star_row)].find('*');
    EXPECT_GT(first_col, bottom_col);
}

TEST(Chart, MultipleSeriesAllInLegend)
{
    auto out = renderChart({
        line("a", 'a', {0, 1}, {1, 1}),
        line("b", 'b', {0, 1}, {2, 2}),
        line("c", 'c', {0, 1}, {3, 3}),
    });
    EXPECT_NE(out.find("a = a"), std::string::npos);
    EXPECT_NE(out.find("b = b"), std::string::npos);
    EXPECT_NE(out.find("c = c"), std::string::npos);
}

TEST(Chart, SinglePointSeries)
{
    auto out = renderChart({line("dot", 'x', {5}, {5})});
    EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(Chart, ConstantSeriesDoesNotCrash)
{
    auto out = renderChart({line("flat", '-', {0, 1, 2}, {3, 3, 3})});
    EXPECT_FALSE(out.empty());
}

TEST(Chart, YFromZeroControlsBaseline)
{
    ChartOptions opt;
    opt.yFromZero = true;
    auto zero = renderChart({line("s", '*', {0, 1}, {10, 12})}, opt);
    EXPECT_NE(zero.find("\n       0|"), std::string::npos);
    opt.yFromZero = false;
    auto tight = renderChart({line("s", '*', {0, 1}, {10, 12})}, opt);
    EXPECT_EQ(tight.find("\n       0|"), std::string::npos);
}

TEST(ChartDeath, InvalidInputs)
{
    EXPECT_EXIT(renderChart({}), testing::ExitedWithCode(1),
                "at least one");
    ChartSeries s;
    s.label = "bad";
    s.x = {1, 2};
    s.y = {1};
    EXPECT_EXIT(renderChart({s}), testing::ExitedWithCode(1),
                "x but");
    ChartSeries empty;
    empty.label = "empty";
    EXPECT_EXIT(renderChart({empty}), testing::ExitedWithCode(1),
                "no data");
    ChartOptions tiny;
    tiny.width = 2;
    ChartSeries ok;
    ok.x = {0};
    ok.y = {0};
    EXPECT_EXIT(renderChart({ok}, tiny), testing::ExitedWithCode(1),
                "too small");
}

} // namespace
} // namespace snoop
