/**
 * Tests for the shared JSON codec (util/json.hh, consumed by both the
 * serve wire protocol and the sweep checkpoint format): round trips,
 * deterministic serialization (sorted keys, shortest round-trip
 * numbers, integers as integers), structured parse errors with byte
 * offsets, escape handling including surrogate pairs, the depth
 * bound, the non-finite-number rejection the admission contract
 * relies on, and the SolveError round trip error cells ride on.
 */

#include <gtest/gtest.h>

#include "util/json.hh"

namespace snoop {
namespace {

JsonValue
parsed(const std::string &text)
{
    auto v = parseJson(text);
    EXPECT_TRUE(bool(v)) << text;
    return v ? std::move(v).value() : JsonValue();
}

TEST(Json, RoundTripsScalars)
{
    EXPECT_EQ(serializeJson(parsed("null")), "null");
    EXPECT_EQ(serializeJson(parsed("true")), "true");
    EXPECT_EQ(serializeJson(parsed("false")), "false");
    EXPECT_EQ(serializeJson(parsed("42")), "42");
    EXPECT_EQ(serializeJson(parsed("-1.5")), "-1.5");
    EXPECT_EQ(serializeJson(parsed("\"hi\"")), "\"hi\"");
}

TEST(Json, IntegersStayIntegers)
{
    // %.1g would print 30 as "3e+01", which round-trips but reads
    // badly in response logs; the serializer special-cases integers.
    EXPECT_EQ(serializeJson(JsonValue(30)), "30");
    EXPECT_EQ(serializeJson(JsonValue(1e6)), "1000000");
    EXPECT_EQ(serializeJson(JsonValue(-7.0)), "-7");
}

TEST(Json, NumbersRoundTripShortest)
{
    // The shortest form that parses back to the same bits.
    double v = 0.1;
    auto r = parseJson(serializeJson(JsonValue(v)));
    ASSERT_TRUE(bool(r));
    EXPECT_EQ(r.value().asNumber(), v);
    EXPECT_EQ(serializeJson(JsonValue(0.1)), "0.1");
}

TEST(Json, ObjectKeysSerializeSorted)
{
    auto v = parsed("{\"b\":1,\"a\":2,\"c\":3}");
    EXPECT_EQ(serializeJson(v), "{\"a\":2,\"b\":1,\"c\":3}");
}

TEST(Json, NestedStructuresRoundTrip)
{
    std::string text =
        "{\"a\":[1,2,{\"b\":null}],\"c\":{\"d\":[true,false]}}";
    EXPECT_EQ(serializeJson(parsed(text)), text);
}

TEST(Json, StringEscapesRoundTrip)
{
    auto v = parsed("\"line\\nquote\\\"tab\\tback\\\\slash\\/\"");
    EXPECT_EQ(v.asString(), "line\nquote\"tab\tback\\slash/");
    auto again = parseJson(serializeJson(v));
    ASSERT_TRUE(bool(again));
    EXPECT_EQ(again.value().asString(), v.asString());
}

TEST(Json, UnicodeEscapesDecodeToUtf8)
{
    EXPECT_EQ(parsed("\"\\u0041\"").asString(), "A");
    EXPECT_EQ(parsed("\"\\u00e9\"").asString(), "\xc3\xa9");
    // Surrogate pair: U+1F600.
    EXPECT_EQ(parsed("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(Json, UnpairedSurrogateIsRejected)
{
    EXPECT_FALSE(bool(parseJson("\"\\ud83d\"")));
    EXPECT_FALSE(bool(parseJson("\"\\ud83dx\"")));
}

TEST(Json, ControlCharactersEscapeOnOutput)
{
    // Split the literal: "\x01b" would be one hex escape (0x1B).
    JsonValue v(std::string("a\x01"
                            "b"));
    EXPECT_EQ(serializeJson(v), "\"a\\u0001b\"");
}

TEST(Json, ParseErrorsCarryByteOffsets)
{
    auto r = parseJson("{\"a\": }");
    ASSERT_FALSE(bool(r));
    EXPECT_EQ(r.error().code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(r.error().message.find("at byte"), std::string::npos);
}

TEST(Json, TrailingGarbageIsRejected)
{
    EXPECT_FALSE(bool(parseJson("{} trailing")));
    EXPECT_FALSE(bool(parseJson("1 2")));
}

TEST(Json, NonFiniteNumbersAreRejected)
{
    // JSON has no NaN/inf literal; an overflowing exponent is the
    // only route to a non-finite double, and it must not parse.
    EXPECT_FALSE(bool(parseJson("1e999")));
    EXPECT_FALSE(bool(parseJson("[-1e999]")));
    EXPECT_FALSE(bool(parseJson("nan")));
    EXPECT_FALSE(bool(parseJson("Infinity")));
}

TEST(Json, DepthBoundRejectsRunawayNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    EXPECT_FALSE(bool(parseJson(deep)));
    // 32 levels is comfortably inside the bound.
    std::string ok(32, '[');
    ok += std::string(32, ']');
    EXPECT_TRUE(bool(parseJson(ok)));
}

TEST(Json, AccessorsAndLookup)
{
    auto v = parsed("{\"x\":1,\"y\":[true]}");
    ASSERT_TRUE(v.isObject());
    ASSERT_NE(v.get("x"), nullptr);
    EXPECT_EQ(v.get("x")->asNumber(), 1.0);
    EXPECT_EQ(v.get("missing"), nullptr);
    ASSERT_TRUE(v.get("y")->isArray());
    EXPECT_TRUE(v.get("y")->asArray()[0].asBool());
}

TEST(Json, SolveErrorRoundTripsExactly)
{
    SolveError e = makeError(SolveErrorCode::NonConvergence,
                             "MvaSolver::solve",
                             "residual 1e-3 after 40 iterations");
    e.withContext("cell (2, 1)").withContext("runSweep");
    SolveError back;
    ASSERT_TRUE(solveErrorFromJson(solveErrorToJson(e), back).ok());
    EXPECT_EQ(back.code, e.code);
    EXPECT_EQ(back.site, e.site);
    EXPECT_EQ(back.message, e.message);
    EXPECT_EQ(back.context, e.context);
    EXPECT_EQ(back.describe(), e.describe());
    // Serialization is canonical, so the round trip is bit-stable.
    EXPECT_EQ(serializeJson(solveErrorToJson(back)),
              serializeJson(solveErrorToJson(e)));
}

TEST(Json, SolveErrorEveryCodeRoundTrips)
{
    for (SolveErrorCode c :
         {SolveErrorCode::InvalidArgument,
          SolveErrorCode::UnknownProtocol,
          SolveErrorCode::NonConvergence,
          SolveErrorCode::NonFiniteIterate,
          SolveErrorCode::NumericRange, SolveErrorCode::BudgetExhausted,
          SolveErrorCode::InjectedFault, SolveErrorCode::IoError,
          SolveErrorCode::Internal}) {
        SolveError e = makeError(c, "site", "msg");
        SolveError back;
        ASSERT_TRUE(solveErrorFromJson(solveErrorToJson(e), back).ok())
            << to_string(c);
        EXPECT_EQ(back.code, c);
    }
}

TEST(Json, MalformedSolveErrorsAreRejected)
{
    SolveError out;
    EXPECT_FALSE(solveErrorFromJson(JsonValue(1.0), out).ok());
    EXPECT_FALSE(solveErrorFromJson(parsed("{}"), out).ok());
    auto bad_code = solveErrorFromJson(parsed(
        "{\"code\":\"bogus\",\"site\":\"s\",\"message\":\"m\"}"), out);
    ASSERT_FALSE(bad_code.ok());
    EXPECT_NE(bad_code.error().message.find("bogus"),
              std::string::npos);
    EXPECT_FALSE(solveErrorFromJson(parsed(
        "{\"code\":\"internal\",\"site\":\"s\",\"message\":\"m\","
        "\"context\":\"not-an-array\"}"), out).ok());
    EXPECT_FALSE(solveErrorFromJson(parsed(
        "{\"code\":\"internal\",\"site\":\"s\",\"message\":\"m\","
        "\"context\":[1]}"), out).ok());
}

} // namespace
} // namespace snoop
