/** Unit tests for the util/fault injection harness. */

#include <cstdlib>

#include <gtest/gtest.h>

#include "util/fault.hh"

namespace snoop {
namespace {

/** Every test starts and ends disarmed (the harness is process-wide
 *  state). */
class Fault : public testing::Test
{
  protected:
    void SetUp() override { clearFaultSpecs(); }
    void TearDown() override { clearFaultSpecs(); }
};

TEST_F(Fault, DisarmedByDefault)
{
    EXPECT_TRUE(activeFaultSpecs().empty());
    EXPECT_FALSE(faultArmed("sweep.cell"));
    EXPECT_FALSE(faultFires("sweep.cell", 0));
}

TEST_F(Fault, SingleSiteArmsExactlyThatSite)
{
    ASSERT_TRUE(setFaultSpecs("mva.nonconverge").ok());
    EXPECT_TRUE(faultArmed("mva.nonconverge"));
    EXPECT_FALSE(faultArmed("mva.nan"));
    EXPECT_FALSE(faultFires("sweep.cell", 3));
}

TEST_F(Fault, KeyedSiteSamplesByPeriod)
{
    ASSERT_TRUE(setFaultSpecs("sweep.cell:every=3").ok());
    EXPECT_TRUE(faultFires("sweep.cell", 0));
    EXPECT_FALSE(faultFires("sweep.cell", 1));
    EXPECT_FALSE(faultFires("sweep.cell", 2));
    EXPECT_TRUE(faultFires("sweep.cell", 3));
    EXPECT_TRUE(faultFires("sweep.cell", 300));
}

TEST_F(Fault, DefaultPeriodFiresOnEveryKey)
{
    ASSERT_TRUE(setFaultSpecs("sim.replication").ok());
    for (uint64_t key : {0ull, 1ull, 7ull, 1000ull})
        EXPECT_TRUE(faultFires("sim.replication", key)) << key;
}

TEST_F(Fault, MultipleSitesParse)
{
    ASSERT_TRUE(
        setFaultSpecs(" sweep.cell:every=2 , io.commit ").ok());
    auto specs = activeFaultSpecs();
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].site, "sweep.cell");
    EXPECT_EQ(specs[0].every, 2u);
    EXPECT_EQ(specs[1].site, "io.commit");
    EXPECT_EQ(specs[1].every, 1u);
    EXPECT_TRUE(faultArmed("io.commit"));
    EXPECT_FALSE(faultFires("sweep.cell", 1));
}

TEST_F(Fault, EmptySpecDisarms)
{
    ASSERT_TRUE(setFaultSpecs("sweep.cell").ok());
    ASSERT_TRUE(setFaultSpecs("").ok());
    EXPECT_TRUE(activeFaultSpecs().empty());
    EXPECT_FALSE(faultArmed("sweep.cell"));
}

TEST_F(Fault, MalformedSpecIsRejectedWithoutInstalling)
{
    ASSERT_TRUE(setFaultSpecs("sweep.cell:every=2").ok());
    for (const char *bad :
         {"sweep.cell:every=0", "sweep.cell:every=x",
          "sweep.cell:often=2", ",", "a,,b"}) {
        auto r = setFaultSpecs(bad);
        ASSERT_FALSE(r.ok()) << bad;
        EXPECT_EQ(r.error().code, SolveErrorCode::InvalidArgument);
    }
    // The previous good configuration survived every failed install.
    auto specs = activeFaultSpecs();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].site, "sweep.cell");
    EXPECT_EQ(specs[0].every, 2u);
}

TEST_F(Fault, ReloadsFromEnvironment)
{
    ASSERT_EQ(setenv("SNOOP_FAULT", "validate.point:every=4", 1), 0);
    reloadFaultSpecsFromEnv();
    EXPECT_TRUE(faultFires("validate.point", 8));
    EXPECT_FALSE(faultFires("validate.point", 9));
    ASSERT_EQ(unsetenv("SNOOP_FAULT"), 0);
    reloadFaultSpecsFromEnv();
    EXPECT_TRUE(activeFaultSpecs().empty());
}

TEST_F(Fault, ProgrammaticConfigOverridesEnvironment)
{
    ASSERT_EQ(setenv("SNOOP_FAULT", "mva.nan", 1), 0);
    // A programmatic install after env consumption wins; the lazy env
    // load must never clobber it.
    ASSERT_TRUE(setFaultSpecs("io.commit").ok());
    EXPECT_FALSE(faultArmed("mva.nan"));
    EXPECT_TRUE(faultArmed("io.commit"));
    ASSERT_EQ(unsetenv("SNOOP_FAULT"), 0);
}

TEST_F(Fault, InjectedFaultCarriesSiteAndKey)
{
    auto e = injectedFault("sweep.cell", 12);
    EXPECT_EQ(e.code, SolveErrorCode::InjectedFault);
    EXPECT_EQ(e.site, "sweep.cell");
    EXPECT_NE(e.message.find("12"), std::string::npos);
}

TEST(FaultDeath, MalformedEnvironmentIsFatal)
{
    // SNOOP_FAULT is user input at the process boundary: a typo must
    // fail loudly, not silently disarm.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_EQ(setenv("SNOOP_FAULT", "sweep.cell:every=banana", 1), 0);
    EXPECT_EXIT(reloadFaultSpecsFromEnv(), testing::ExitedWithCode(1),
                "every=N");
    ASSERT_EQ(unsetenv("SNOOP_FAULT"), 0);
    reloadFaultSpecsFromEnv();
}

} // namespace
} // namespace snoop
