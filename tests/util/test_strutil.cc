/** Unit tests for util/strutil. */

#include <gtest/gtest.h>

#include "util/strutil.hh"

namespace snoop {
namespace {

TEST(FormatDouble, RespectsDigits)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(3.14159, 0), "3");
    EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
}

TEST(FormatCompact, TrimsTrailingZeros)
{
    EXPECT_EQ(formatCompact(5.30, 3), "5.3");
    EXPECT_EQ(formatCompact(5.0, 3), "5");
    EXPECT_EQ(formatCompact(5.125, 3), "5.125");
}

TEST(FormatCompact, HonorsMinDigits)
{
    EXPECT_EQ(formatCompact(5.30, 3, 2), "5.30");
    EXPECT_EQ(formatCompact(5.0, 3, 1), "5.0");
}

TEST(FormatPercent, ScalesFraction)
{
    EXPECT_EQ(formatPercent(0.0312), "3.12%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
    EXPECT_EQ(formatPercent(-0.05, 1), "-5.0%");
}

TEST(Pad, LeftRightCenter)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padCenter("ab", 6), "  ab  ");
    EXPECT_EQ(padCenter("ab", 5), " ab  ");
}

TEST(Pad, NoTruncation)
{
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
    EXPECT_EQ(padRight("abcdef", 3), "abcdef");
    EXPECT_EQ(padCenter("abcdef", 3), "abcdef");
}

TEST(Split, PreservesEmptyFields)
{
    auto v = split("a,,b", ',');
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "");
    EXPECT_EQ(v[2], "b");
}

TEST(Split, SingleField)
{
    auto v = split("abc", ',');
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], "abc");
}

TEST(Split, EmptyString)
{
    auto v = split("", ',');
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], "");
}

TEST(Join, RoundTripsWithSplit)
{
    std::vector<std::string> parts = {"x", "y", "z"};
    EXPECT_EQ(join(parts, ","), "x,y,z");
    EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Join, EmptyAndSingle)
{
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"a"}, ","), "a");
}

TEST(ToLower, Basic)
{
    EXPECT_EQ(toLower("WriteOnce"), "writeonce");
    EXPECT_EQ(toLower("ABC-123"), "abc-123");
}

TEST(StartsWith, Basic)
{
    EXPECT_TRUE(startsWith("--flag", "--"));
    EXPECT_FALSE(startsWith("-", "--"));
    EXPECT_TRUE(startsWith("abc", ""));
}

TEST(Trim, StripsWhitespace)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim("\t\nx"), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(ParseDouble, AcceptsValidRejectsGarbage)
{
    double v = 0;
    EXPECT_TRUE(parseDouble("3.5", v));
    EXPECT_DOUBLE_EQ(v, 3.5);
    EXPECT_TRUE(parseDouble("-1e3", v));
    EXPECT_DOUBLE_EQ(v, -1000.0);
    EXPECT_FALSE(parseDouble("3.5x", v));
    EXPECT_FALSE(parseDouble("", v));
    EXPECT_FALSE(parseDouble("abc", v));
}

TEST(ParseInt, AcceptsValidRejectsGarbage)
{
    long v = 0;
    EXPECT_TRUE(parseInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt("-7", v));
    EXPECT_EQ(v, -7);
    EXPECT_FALSE(parseInt("4.2", v));
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("12a", v));
}

} // namespace
} // namespace snoop
