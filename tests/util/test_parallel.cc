/** Unit tests for the snoop_parallel execution layer. */

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.hh"

namespace snoop {
namespace {

TEST(ThreadPool, StartAndStopAtEverySize)
{
    // Construction spawns the workers; destruction joins them. A pool
    // that wedges on start/stop hangs this test rather than failing.
    for (unsigned workers : {0u, 1u, 2u, 7u}) {
        ThreadPool pool(workers);
        EXPECT_EQ(pool.workerCount(), workers);
    }
}

TEST(ThreadPool, ParallelForCoversExactlyTheRange)
{
    ThreadPool pool(3);
    for (size_t n : {size_t(0), size_t(1), size_t(2), size_t(17),
                     size_t(1000)}) {
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(n, [&](size_t i) {
            ASSERT_LT(i, n);
            hits[i].fetch_add(1);
        });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ResultsLandInPreSizedSlots)
{
    ThreadPool pool(4);
    std::vector<double> out(257, -1.0);
    pool.parallelFor(out.size(), [&](size_t i) {
        out[i] = static_cast<double>(i) * 2.0;
    });
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<double>(i) * 2.0);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](size_t i) {
                             if (i == 37)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool survives a failed region and keeps working.
    std::atomic<size_t> count{0};
    pool.parallelFor(50, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50u);
}

TEST(ThreadPool, ExceptionCancelsRemainingIndices)
{
    ThreadPool pool(2);
    std::atomic<size_t> executed{0};
    try {
        pool.parallelFor(100000, [&](size_t) {
            executed.fetch_add(1);
            throw std::runtime_error("first");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &) {
    }
    // Cancellation is advisory (indices already claimed still finish)
    // but the bulk of the range must be skipped.
    EXPECT_LT(executed.load(), 100000u);
}

TEST(ThreadPool, NestedCallsRunSerially)
{
    // A nested parallelFor from inside a worker must not deadlock the
    // fixed-size pool; it runs inline on the worker.
    ThreadPool pool(2);
    std::atomic<size_t> inner_total{0};
    pool.parallelFor(8, [&](size_t) {
        pool.parallelFor(8, [&](size_t) { inner_total.fetch_add(1); });
    });
    EXPECT_EQ(inner_total.load(), 64u);
}

TEST(GlobalParallelFor, RespectsJobOverride)
{
    setParallelJobs(3);
    EXPECT_EQ(parallelJobs(), 3u);
    std::vector<int> out(64, 0);
    parallelFor(out.size(), [&](size_t i) { out[i] = 1; });
    for (int v : out)
        EXPECT_EQ(v, 1);
    setParallelJobs(0);
    EXPECT_EQ(parallelJobs(), defaultJobs());
}

TEST(GlobalParallelFor, SerialFallbackAtOneJob)
{
    setParallelJobs(1);
    // With total parallelism 1 everything runs on the calling thread.
    std::vector<size_t> order;
    parallelFor(10, [&](size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 10u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i); // strictly in index order when serial
    setParallelJobs(0);
}

TEST(DefaultJobs, AlwaysPositive)
{
    EXPECT_GE(defaultJobs(), 1u);
}

} // namespace
} // namespace snoop
