/** Unit tests for util/contracts: macros and NumericGuard. */

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/contracts.hh"

namespace snoop {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// --- macros ----------------------------------------------------------

TEST(Contracts, PassingChecksAreSilent)
{
    SNOOP_ASSERT(1 + 1 == 2);
    SNOOP_ASSERT(true, "with a message %d", 42);
    SNOOP_REQUIRE(3 > 2);
    SNOOP_REQUIRE(3 > 2, "n = %u", 3u);
    SNOOP_NUMERIC_CHECK(std::isfinite(0.5));
    SNOOP_NUMERIC_CHECK(0.5 < 1.0, "p = %g", 0.5);
}

TEST(ContractsDeath, AssertAborts)
{
    EXPECT_DEATH(SNOOP_ASSERT(1 == 2), "assertion.*1 == 2");
}

TEST(ContractsDeath, AssertFormatsMessage)
{
    EXPECT_DEATH(SNOOP_ASSERT(false, "index %d out of range", 7),
                 "assertion.*index 7 out of range");
}

TEST(ContractsDeath, RequireExitsWithCode1)
{
    // fatal() idiom: user error, exit(1), no core dump.
    EXPECT_EXIT(SNOOP_REQUIRE(false, "need at least %u processors", 1u),
                testing::ExitedWithCode(1), "requirement.*processors");
}

TEST(ContractsDeath, NumericCheckAbortsWithPrefix)
{
    EXPECT_DEATH(SNOOP_NUMERIC_CHECK(std::isfinite(kNaN),
                                     "R diverged at iteration %d", 3),
                 "numeric.*diverged at iteration 3");
}

TEST(ContractsDeath, ConditionSideEffectsHappenExactlyOnce)
{
    // The macros must evaluate their condition exactly once.
    int calls = 0;
    auto once = [&calls]() {
        ++calls;
        return true;
    };
    SNOOP_ASSERT(once());
    EXPECT_EQ(calls, 1);
}

// --- NumericGuard: passing values ------------------------------------

TEST(NumericGuard, CleanValuesPassAllChecks)
{
    NumericGuard g("TestSolver", "N=4");
    g.finite("x", 1.5)
        .nonNegative("w", 0.0)
        .positive("R", 3.25)
        .probability("p", 1.0)
        .utilization("u", 0.997)
        .finiteVector("v", {0.0, 1.0, -2.5})
        .distribution("pi", {0.25, 0.25, 0.5})
        .stochasticRows("P", {0.5, 0.5, 0.1, 0.9}, 2)
        .converged("solve", true);
}

TEST(NumericGuard, SlackAbsorbsHonestRounding)
{
    NumericGuard g("TestSolver");
    g.utilization("u", 1.0 + 1e-12);
    g.probability("p", -1e-12);
    g.nonNegative("w", -1e-12);
    g.distribution("pi", {0.5 + 1e-9, 0.5 - 1e-9});
}

// --- NumericGuard: violations panic ----------------------------------

TEST(NumericGuardDeath, NaNIsNotFinite)
{
    NumericGuard g("TestSolver");
    EXPECT_DEATH(g.finite("R", kNaN), "numeric TestSolver.*R.*not finite");
}

TEST(NumericGuardDeath, InfinityIsNotFinite)
{
    NumericGuard g("TestSolver");
    EXPECT_DEATH(g.finite("R", kInf), "not finite");
}

TEST(NumericGuardDeath, NegativeValueFailsNonNegative)
{
    NumericGuard g("TestSolver");
    EXPECT_DEATH(g.nonNegative("w", -0.25), "is negative");
}

TEST(NumericGuardDeath, ZeroFailsPositive)
{
    NumericGuard g("TestSolver");
    EXPECT_DEATH(g.positive("R", 0.0), "not positive");
}

TEST(NumericGuardDeath, ProbabilityAboveOneFails)
{
    NumericGuard g("TestSolver");
    EXPECT_DEATH(g.probability("p", 1.3), "not a probability");
}

TEST(NumericGuardDeath, UtilizationAboveOneFails)
{
    NumericGuard g("TestSolver");
    EXPECT_DEATH(g.utilization("u", 1.02), "not a utilization");
}

TEST(NumericGuardDeath, NonFiniteVectorComponentIsNamed)
{
    NumericGuard g("TestSolver");
    EXPECT_DEATH(g.finiteVector("x", {1.0, kNaN, 3.0}),
                 "x\\[1\\].*not finite");
}

TEST(NumericGuardDeath, DistributionMustSumToOne)
{
    NumericGuard g("TestSolver");
    EXPECT_DEATH(g.distribution("pi", {0.5, 0.4}),
                 "sum\\(pi\\).*does not sum to 1");
}

TEST(NumericGuardDeath, StochasticRowSumViolationIsNamed)
{
    NumericGuard g("TestSolver");
    EXPECT_DEATH(g.stochasticRows("P", {0.5, 0.5, 0.3, 0.3}, 2),
                 "rowsum\\(P\\[1\\]\\)");
}

TEST(NumericGuardDeath, StochasticMatrixDimensionChecked)
{
    NumericGuard g("TestSolver");
    EXPECT_DEATH(g.stochasticRows("P", {0.5, 0.5, 1.0}, 2),
                 "dim\\(P\\)");
}

TEST(NumericGuardDeath, UnconvergedFlagPanics)
{
    NumericGuard g("TestSolver");
    EXPECT_DEATH(g.converged("solve", false), "non-convergence");
}

TEST(NumericGuardDeath, DetailAppearsInMessage)
{
    NumericGuard g("MvaSolver", "N=12 protocol=WO");
    EXPECT_DEATH(g.positive("speedup", -1.0), "N=12 protocol=WO");
}

} // namespace
} // namespace snoop
