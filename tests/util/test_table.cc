/** Unit tests for util/table. */

#include <gtest/gtest.h>

#include "util/table.hh"

namespace snoop {
namespace {

TEST(Table, RendersHeaderAndRows)
{
    Table t({"N", "speedup"});
    t.addRow({"4", "3.17"});
    t.addRow({"100", "6.07"});
    std::string out = t.render();
    EXPECT_NE(out.find("N"), std::string::npos);
    EXPECT_NE(out.find("speedup"), std::string::npos);
    EXPECT_NE(out.find("3.17"), std::string::npos);
    EXPECT_NE(out.find("6.07"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, RightAlignsByDefault)
{
    Table t({"col"});
    t.addRow({"1"});
    // width of "col" is 3, so "1" is padded to "  1"
    EXPECT_NE(t.render().find("|   1 |"), std::string::npos);
}

TEST(Table, LeftAlignWorks)
{
    Table t({"col"});
    t.setAlign(0, Align::Left);
    t.addRow({"1"});
    EXPECT_NE(t.render().find("| 1   |"), std::string::npos);
}

TEST(Table, TitleAppearsFirst)
{
    Table t({"a"});
    t.setTitle("Table 4.1(a)");
    t.addRow({"x"});
    std::string out = t.render();
    EXPECT_EQ(out.rfind("Table 4.1(a)\n", 0), 0u);
}

TEST(Table, SeparatorDoesNotCountAsRow)
{
    Table t({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    EXPECT_EQ(t.numRows(), 2u);
    // three rules (top, under header, bottom) plus the separator
    std::string out = t.render();
    size_t rules = 0;
    for (size_t pos = 0; (pos = out.find("+--", pos)) != std::string::npos;
         ++pos) {
        ++rules;
    }
    EXPECT_EQ(rules, 4u);
}

TEST(Table, CsvOutputSkipsSeparators)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    t.addSeparator();
    t.addRow({"3", "4"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n3,4\n");
}

TEST(TableDeath, WrongArityPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "addRow");
}

TEST(TableDeath, EmptyHeaderPanics)
{
    EXPECT_DEATH(Table t({}), "at least one column");
}

TEST(TableDeath, SetAlignOutOfRangePanics)
{
    Table t({"a"});
    EXPECT_DEATH(t.setAlign(1, Align::Left), "out of range");
}

} // namespace
} // namespace snoop
