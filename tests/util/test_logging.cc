/** Unit tests for util/logging. */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace snoop {
namespace {

TEST(Logging, StrprintfFormatsBasicTypes)
{
    EXPECT_EQ(strprintf("x=%d", 42), "x=42");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strprintf("%s/%s", "a", "b"), "a/b");
}

TEST(Logging, StrprintfEmptyAndNoArgs)
{
    EXPECT_EQ(strprintf("%s", ""), "");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Logging, StrprintfLongOutput)
{
    std::string big(10000, 'y');
    EXPECT_EQ(strprintf("%s", big.c_str()).size(), big.size());
}

TEST(Logging, LogLevelRoundTrip)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(old);
}

TEST(Logging, InformRespectsQuiet)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Quiet);
    testing::internal::CaptureStderr();
    inform("should be suppressed");
    warn("also suppressed");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
    setLogLevel(old);
}

TEST(Logging, InformAndWarnTagOutput)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Normal);
    testing::internal::CaptureStderr();
    inform("hello %d", 7);
    warn("careful");
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("info: hello 7"), std::string::npos);
    EXPECT_NE(out.find("warn: careful"), std::string::npos);
    setLogLevel(old);
}

TEST(Logging, DebugOnlyAtDebugLevel)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Normal);
    testing::internal::CaptureStderr();
    debugLog("hidden");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
    setLogLevel(LogLevel::Debug);
    testing::internal::CaptureStderr();
    debugLog("visible");
    EXPECT_NE(testing::internal::GetCapturedStderr().find("visible"),
              std::string::npos);
    setLogLevel(old);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("invariant %d", 1), "panic: invariant 1");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "fatal: bad config");
}

} // namespace
} // namespace snoop
