/** Unit tests for util/logging. */

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/parallel.hh"

namespace snoop {
namespace {

TEST(Logging, StrprintfFormatsBasicTypes)
{
    EXPECT_EQ(strprintf("x=%d", 42), "x=42");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strprintf("%s/%s", "a", "b"), "a/b");
}

TEST(Logging, StrprintfEmptyAndNoArgs)
{
    EXPECT_EQ(strprintf("%s", ""), "");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Logging, StrprintfLongOutput)
{
    std::string big(10000, 'y');
    EXPECT_EQ(strprintf("%s", big.c_str()).size(), big.size());
}

TEST(Logging, LogLevelRoundTrip)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(old);
}

TEST(Logging, InformRespectsQuiet)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Quiet);
    testing::internal::CaptureStderr();
    inform("should be suppressed");
    warn("also suppressed");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
    setLogLevel(old);
}

TEST(Logging, InformAndWarnTagOutput)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Normal);
    testing::internal::CaptureStderr();
    inform("hello %d", 7);
    warn("careful");
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("info: hello 7"), std::string::npos);
    EXPECT_NE(out.find("warn: careful"), std::string::npos);
    setLogLevel(old);
}

TEST(Logging, DebugOnlyAtDebugLevel)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Normal);
    testing::internal::CaptureStderr();
    debugLog("hidden");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
    setLogLevel(LogLevel::Debug);
    testing::internal::CaptureStderr();
    debugLog("visible");
    EXPECT_NE(testing::internal::GetCapturedStderr().find("visible"),
              std::string::npos);
    setLogLevel(old);
}

TEST(Logging, ConcurrentEmitNeverInterleavesLines)
{
    // emit() formats the whole line and writes it with one stdio
    // call, so messages from concurrent workers must come out as
    // complete "warn: <tag> <body>" lines. (Under the tsan preset
    // this also exercises the atomic log level.)
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Normal);
    setParallelJobs(4); // force real workers even on small machines
    testing::internal::CaptureStderr();
    parallelFor(64, [](size_t i) {
        warn("worker-%zu says all-of-this-stays-together", i);
        setLogLevel(LogLevel::Normal); // concurrent level writes
    });
    std::string out = testing::internal::GetCapturedStderr();
    setParallelJobs(0);
    size_t lines = 0;
    size_t pos = 0;
    while ((pos = out.find('\n', pos)) != std::string::npos) {
        ++lines;
        ++pos;
    }
    EXPECT_EQ(lines, 64u);
    // Every line is exactly "warn: worker-<i> says ..." - no torn
    // prefixes, no glued fragments.
    size_t start = 0;
    while (start < out.size()) {
        size_t end = out.find('\n', start);
        ASSERT_NE(end, std::string::npos);
        std::string line = out.substr(start, end - start);
        EXPECT_EQ(line.rfind("warn: worker-", 0), 0u) << line;
        EXPECT_NE(line.find("says all-of-this-stays-together"),
                  std::string::npos)
            << line;
        start = end + 1;
    }
    setLogLevel(old);
}

TEST(LoggingDeath, PanicAborts)
{
    // This binary spawns pool workers; fork-style death tests from a
    // multithreaded process can wedge (notably under TSan), so re-exec.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(panic("invariant %d", 1), "panic: invariant 1");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "fatal: bad config");
}

} // namespace
} // namespace snoop
