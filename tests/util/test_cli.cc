/** Unit tests for util/cli. */

#include <gtest/gtest.h>

#include "util/cli.hh"

namespace snoop {
namespace {

// argv helper: builds a mutable char* array from string literals
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : strings_(std::move(args))
    {
        for (auto &s : strings_)
            ptrs_.push_back(s.data());
    }
    int argc() const { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> strings_;
    std::vector<char *> ptrs_;
};

CliParser
makeParser()
{
    CliParser cli("prog", "test program");
    cli.addOption("n", "8", "number of processors");
    cli.addOption("protocol", "writeonce", "protocol name");
    cli.addOption("tau", "2.5", "execution burst");
    cli.addFlag("verbose", "verbose output");
    return cli;
}

TEST(Cli, DefaultsApplyWhenUnset)
{
    auto cli = makeParser();
    Argv a({"prog"});
    cli.parse(a.argc(), a.argv());
    EXPECT_EQ(cli.getInt("n"), 8);
    EXPECT_EQ(cli.get("protocol"), "writeonce");
    EXPECT_DOUBLE_EQ(cli.getDouble("tau"), 2.5);
    EXPECT_FALSE(cli.getFlag("verbose"));
}

TEST(Cli, EqualsSyntax)
{
    auto cli = makeParser();
    Argv a({"prog", "--n=16", "--protocol=illinois"});
    cli.parse(a.argc(), a.argv());
    EXPECT_EQ(cli.getInt("n"), 16);
    EXPECT_EQ(cli.get("protocol"), "illinois");
}

TEST(Cli, SpaceSyntax)
{
    auto cli = makeParser();
    Argv a({"prog", "--n", "32"});
    cli.parse(a.argc(), a.argv());
    EXPECT_EQ(cli.getInt("n"), 32);
}

TEST(Cli, FlagsAndPositionals)
{
    auto cli = makeParser();
    Argv a({"prog", "--verbose", "pos1", "pos2"});
    cli.parse(a.argc(), a.argv());
    EXPECT_TRUE(cli.getFlag("verbose"));
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "pos1");
    EXPECT_EQ(cli.positional()[1], "pos2");
}

TEST(Cli, UsageMentionsEveryOption)
{
    auto cli = makeParser();
    std::string u = cli.usage();
    EXPECT_NE(u.find("--n"), std::string::npos);
    EXPECT_NE(u.find("--protocol"), std::string::npos);
    EXPECT_NE(u.find("--verbose"), std::string::npos);
    EXPECT_NE(u.find("--help"), std::string::npos);
    EXPECT_NE(u.find("default: 8"), std::string::npos);
}

TEST(CliDeath, UnknownOptionExits)
{
    auto cli = makeParser();
    Argv a({"prog", "--bogus=1"});
    EXPECT_EXIT(cli.parse(a.argc(), a.argv()), testing::ExitedWithCode(1),
                "unknown option");
}

TEST(CliDeath, MissingValueExits)
{
    auto cli = makeParser();
    Argv a({"prog", "--n"});
    EXPECT_EXIT(cli.parse(a.argc(), a.argv()), testing::ExitedWithCode(1),
                "needs a value");
}

TEST(CliDeath, NonNumericIntIsFatal)
{
    auto cli = makeParser();
    Argv a({"prog", "--n=abc"});
    cli.parse(a.argc(), a.argv());
    EXPECT_EXIT(cli.getInt("n"), testing::ExitedWithCode(1),
                "not an integer");
}

TEST(CliDeath, IntOverflowIsFatal)
{
    auto cli = makeParser();
    // Parses as a long but does not fit an int: silently truncating
    // here is how a 64-bit budget turns into a negative capacity.
    Argv a({"prog", "--n=4294967296"});
    cli.parse(a.argc(), a.argv());
    EXPECT_EXIT(cli.getInt("n"), testing::ExitedWithCode(1),
                "overflows the int range");
}

TEST(Cli, GetLongCoversTheFullRange)
{
    auto cli = makeParser();
    Argv a({"prog", "--n=4294967296"});
    cli.parse(a.argc(), a.argv());
    EXPECT_EQ(cli.getLong("n"), 4294967296L);
}

TEST(CliDeath, NonFiniteDoubleIsFatal)
{
    for (const char *bad : {"--tau=nan", "--tau=inf"}) {
        auto cli = makeParser();
        Argv a({"prog", bad});
        cli.parse(a.argc(), a.argv());
        EXPECT_EXIT(cli.getDouble("tau"), testing::ExitedWithCode(1),
                    "not finite");
    }
}

TEST(CliDeath, HelpExitsZero)
{
    auto cli = makeParser();
    Argv a({"prog", "--help"});
    EXPECT_EXIT(cli.parse(a.argc(), a.argv()), testing::ExitedWithCode(0),
                "");
}

} // namespace
} // namespace snoop
