/** Unit tests for util/csv. */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.hh"

namespace snoop {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class CsvTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = testing::TempDir() + "snoop_csv_test.csv";
    }
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_;
};

TEST_F(CsvTest, WritesHeaderAndRows)
{
    {
        CsvWriter w(path_);
        w.header({"n", "speedup"});
        w.row({"4", "3.17"});
        w.rowDoubles({10.0, 5.49}, 2);
    }
    EXPECT_EQ(slurp(path_), "n,speedup\n4,3.17\n10.00,5.49\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters)
{
    {
        CsvWriter w(path_);
        w.row({"a,b", "say \"hi\"", "line\nbreak", "plain"});
    }
    EXPECT_EQ(slurp(path_),
              "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\",plain\n");
}

TEST(CsvEscape, OnlyQuotesWhenNeeded)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("with space"), "with space");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
}

// The no-fatal-in-solver contract: an unwritable path must not exit
// the process. The error is sticky, rows are dropped, and close()
// surfaces the IoError.
TEST(CsvError, UnwritablePathSurfacesThroughClose)
{
    CsvWriter w("/nonexistent-dir-xyz/file.csv");
    EXPECT_FALSE(w.ok());
    w.header({"a", "b"});      // dropped, must not crash or exit
    w.row({"1", "2"});
    auto closed = w.close();
    ASSERT_FALSE(closed);
    EXPECT_EQ(closed.error().code, SolveErrorCode::IoError);
    EXPECT_NE(closed.error().describe().find("cannot open"),
              std::string::npos);
}

TEST(CsvError, CloseIsIdempotentAfterFailure)
{
    CsvWriter w("/nonexistent-dir-xyz/file.csv");
    EXPECT_FALSE(w.close());
    EXPECT_FALSE(w.close()); // the sticky error keeps reporting
}

TEST_F(CsvTest, OkReportsHealthyWriter)
{
    CsvWriter w(path_);
    EXPECT_TRUE(w.ok());
    w.row({"1"});
    EXPECT_TRUE(w.ok());
    EXPECT_TRUE(static_cast<bool>(w.close()));
}

} // namespace
} // namespace snoop
