/** Unit tests for util/expected: SolveError, SolveException,
 *  Expected<T>. */

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "util/expected.hh"

namespace snoop {
namespace {

TEST(SolveError, CodesHaveStableKebabCaseNames)
{
    EXPECT_STREQ(to_string(SolveErrorCode::InvalidArgument),
                 "invalid-argument");
    EXPECT_STREQ(to_string(SolveErrorCode::UnknownProtocol),
                 "unknown-protocol");
    EXPECT_STREQ(to_string(SolveErrorCode::NonConvergence),
                 "non-convergence");
    EXPECT_STREQ(to_string(SolveErrorCode::NonFiniteIterate),
                 "non-finite-iterate");
    EXPECT_STREQ(to_string(SolveErrorCode::NumericRange),
                 "numeric-range");
    EXPECT_STREQ(to_string(SolveErrorCode::BudgetExhausted),
                 "budget-exhausted");
    EXPECT_STREQ(to_string(SolveErrorCode::InjectedFault),
                 "injected-fault");
    EXPECT_STREQ(to_string(SolveErrorCode::IoError), "io-error");
    EXPECT_STREQ(to_string(SolveErrorCode::Internal), "internal");
}

TEST(SolveError, MakeErrorFormatsMessage)
{
    auto e = makeError(SolveErrorCode::NumericRange, "MvaSolver::solve",
                       "busUtil = %g violates [0, 1]", 1.25);
    EXPECT_EQ(e.code, SolveErrorCode::NumericRange);
    EXPECT_EQ(e.site, "MvaSolver::solve");
    EXPECT_EQ(e.message, "busUtil = 1.25 violates [0, 1]");
    EXPECT_TRUE(e.context.empty());
}

TEST(SolveError, DescribeRendersCodeSiteMessageAndContext)
{
    auto e = makeError(SolveErrorCode::NonConvergence,
                       "FixedPointSolver::trySolve", "no convergence");
    std::string plain = e.describe();
    EXPECT_NE(plain.find("non-convergence"), std::string::npos);
    EXPECT_NE(plain.find("FixedPointSolver::trySolve"),
              std::string::npos);
    EXPECT_NE(plain.find("no convergence"), std::string::npos);

    // Context frames accumulate innermost-first and all render.
    e.withContext("MvaSolver::trySolve(N=8)")
        .withContext("Analyzer::tryAnalyze(WriteOnce)");
    ASSERT_EQ(e.context.size(), 2u);
    EXPECT_EQ(e.context[0], "MvaSolver::trySolve(N=8)");
    std::string full = e.describe();
    EXPECT_NE(full.find("MvaSolver::trySolve(N=8)"), std::string::npos);
    EXPECT_NE(full.find("Analyzer::tryAnalyze(WriteOnce)"),
              std::string::npos);
}

TEST(SolveError, RvalueWithContextChainsOnTemporaries)
{
    auto e = makeError(SolveErrorCode::Internal, "site", "boom")
                 .withContext("outer");
    ASSERT_EQ(e.context.size(), 1u);
    EXPECT_EQ(e.context[0], "outer");
}

TEST(SolveException, WhatIsTheDescribedError)
{
    SolveException ex(makeError(SolveErrorCode::UnknownProtocol,
                                "Analyzer::tryAnalyze",
                                "unknown protocol 'firefly'"));
    EXPECT_EQ(ex.error().code, SolveErrorCode::UnknownProtocol);
    EXPECT_EQ(std::string(ex.what()), ex.error().describe());
    EXPECT_NE(std::string(ex.what()).find("firefly"), std::string::npos);
}

TEST(Expected, HoldsValue)
{
    Expected<int> r = 42;
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.valueOr(7), 42);
    EXPECT_EQ(r.orThrow(), 42);
}

TEST(Expected, HoldsError)
{
    Expected<int> r =
        makeError(SolveErrorCode::InvalidArgument, "site", "bad");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::InvalidArgument);
    EXPECT_EQ(r.valueOr(7), 7);
    try {
        r.orThrow();
        FAIL() << "expected SolveException";
    } catch (const SolveException &e) {
        EXPECT_EQ(e.error().code, SolveErrorCode::InvalidArgument);
    }
}

TEST(Expected, MoveOnlyValuesMoveThroughOrThrow)
{
    auto make = []() -> Expected<std::unique_ptr<int>> {
        return std::make_unique<int>(5);
    };
    auto p = std::move(make()).orThrow();
    ASSERT_TRUE(p != nullptr);
    EXPECT_EQ(*p, 5);
}

TEST(ExpectedVoid, DefaultIsSuccess)
{
    Expected<void> ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_NO_THROW(ok.orThrow());
}

TEST(ExpectedVoid, ErrorThrowsAndDescribes)
{
    Expected<void> bad =
        makeError(SolveErrorCode::IoError, "AtomicFile::commit",
                  "rename failed");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, SolveErrorCode::IoError);
    EXPECT_THROW(bad.orThrow(), SolveException);
}

} // namespace
} // namespace snoop
