/** Unit tests for util/fixed_point. */

#include <cmath>

#include <gtest/gtest.h>

#include "util/fixed_point.hh"

namespace snoop {
namespace {

TEST(FixedPoint, SolvesContractionMapping)
{
    // x = cos(x) has the Dottie fixed point ~0.739085.
    FixedPointSolver solver({.maxIterations = 200, .tolerance = 1e-12});
    auto res = solver.solve(
        [](const std::vector<double> &x) {
            return std::vector<double>{std::cos(x[0])};
        },
        {0.0});
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x[0], 0.7390851332151607, 1e-9);
}

TEST(FixedPoint, MultiDimensionalSystem)
{
    // x = 0.5*y + 1, y = 0.5*x  ->  x = 4/3, y = 2/3.
    FixedPointSolver solver;
    auto res = solver.solve(
        [](const std::vector<double> &v) {
            return std::vector<double>{0.5 * v[1] + 1.0, 0.5 * v[0]};
        },
        {0.0, 0.0});
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x[0], 4.0 / 3.0, 1e-9);
    EXPECT_NEAR(res.x[1], 2.0 / 3.0, 1e-9);
}

TEST(FixedPoint, ImmediateFixedPointConvergesInOneIteration)
{
    FixedPointSolver solver;
    auto res = solver.solve(
        [](const std::vector<double> &x) { return x; }, {1.0, 2.0});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, 1);
}

TEST(FixedPoint, ReportsNonConvergence)
{
    // x -> x + 1 never converges.
    FixedPointSolver solver({.maxIterations = 10, .tolerance = 1e-9});
    auto res = solver.solve(
        [](const std::vector<double> &x) {
            return std::vector<double>{x[0] + 1.0};
        },
        {0.0});
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.iterations, 10);
    EXPECT_NEAR(res.residual, 1.0, 1e-12);
}

TEST(FixedPoint, DampingStabilizesOscillation)
{
    // x -> -x oscillates undamped but converges to 0 with damping.
    FixedPointSolver damped(
        {.maxIterations = 500, .tolerance = 1e-10, .damping = 0.5});
    auto res = damped.solve(
        [](const std::vector<double> &x) {
            return std::vector<double>{-x[0]};
        },
        {1.0});
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x[0], 0.0, 1e-8);
}

TEST(FixedPointDeath, DimensionChangePanics)
{
    FixedPointSolver solver;
    EXPECT_DEATH(solver.solve(
                     [](const std::vector<double> &) {
                         return std::vector<double>{1.0, 2.0};
                     },
                     {0.0}),
                 "dimension");
}

TEST(FixedPointDeath, BadOptionsPanic)
{
    EXPECT_DEATH(FixedPointSolver({.maxIterations = 0}), "maxIterations");
    EXPECT_DEATH(FixedPointSolver({.damping = 0.0}), "damping");
    EXPECT_DEATH(FixedPointSolver({.damping = 1.5}), "damping");
    EXPECT_DEATH(FixedPointSolver({.tolerance = 0.0}), "tolerance");
}

} // namespace
} // namespace snoop
