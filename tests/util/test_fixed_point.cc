/** Unit tests for util/fixed_point. */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/fixed_point.hh"

namespace snoop {
namespace {

TEST(FixedPoint, SolvesContractionMapping)
{
    // x = cos(x) has the Dottie fixed point ~0.739085.
    FixedPointSolver solver({.maxIterations = 200, .tolerance = 1e-12});
    auto res = solver.solve(
        [](const std::vector<double> &x) {
            return std::vector<double>{std::cos(x[0])};
        },
        {0.0});
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x[0], 0.7390851332151607, 1e-9);
}

TEST(FixedPoint, MultiDimensionalSystem)
{
    // x = 0.5*y + 1, y = 0.5*x  ->  x = 4/3, y = 2/3.
    FixedPointSolver solver;
    auto res = solver.solve(
        [](const std::vector<double> &v) {
            return std::vector<double>{0.5 * v[1] + 1.0, 0.5 * v[0]};
        },
        {0.0, 0.0});
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x[0], 4.0 / 3.0, 1e-9);
    EXPECT_NEAR(res.x[1], 2.0 / 3.0, 1e-9);
}

TEST(FixedPoint, ImmediateFixedPointConvergesInOneIteration)
{
    FixedPointSolver solver;
    auto res = solver.solve(
        [](const std::vector<double> &x) { return x; }, {1.0, 2.0});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, 1);
}

TEST(FixedPoint, ReportsNonConvergence)
{
    // x -> x + 1 never converges at any damping: the recovery ladder
    // runs all five rungs (1.0, then kRecoveryLadderRungs) and
    // reports the final attempt's state.
    FixedPointSolver solver({.maxIterations = 10, .tolerance = 1e-9});
    auto res = solver.solve(
        [](const std::vector<double> &x) {
            return std::vector<double>{x[0] + 1.0};
        },
        {0.0});
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.iterations, 10);
    ASSERT_EQ(res.attempts.size(), 5u);
    EXPECT_DOUBLE_EQ(res.attempts[0].damping, 1.0);
    EXPECT_NEAR(res.attempts[0].residual, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(res.attempts[3].damping, 0.1);
    EXPECT_DOUBLE_EQ(res.attempts[4].damping, 0.05);
    EXPECT_NEAR(res.residual, 0.05, 1e-12);
}

TEST(FixedPoint, RecoveryLadderSkipsIneligibleRungs)
{
    EXPECT_EQ(recoveryLadder(1.0),
              (std::vector<double>{1.0, 0.5, 0.25, 0.1, 0.05}));
    // 0.5 is not below 0.3: it is skipped, not a ladder terminator.
    EXPECT_EQ(recoveryLadder(0.3),
              (std::vector<double>{0.3, 0.25, 0.1, 0.05}));
    // Nothing lies below the heaviest shared rung: single attempt.
    EXPECT_EQ(recoveryLadder(0.05), (std::vector<double>{0.05}));
}

TEST(FixedPoint, ReportsNonConvergenceWithoutLadder)
{
    // recoveryLadder = false restores the single-attempt behavior.
    FixedPointSolver solver({.maxIterations = 10,
                             .tolerance = 1e-9,
                             .recoveryLadder = false});
    auto res = solver.solve(
        [](const std::vector<double> &x) {
            return std::vector<double>{x[0] + 1.0};
        },
        {0.0});
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.iterations, 10);
    EXPECT_NEAR(res.residual, 1.0, 1e-12);
    ASSERT_EQ(res.attempts.size(), 1u);
}

TEST(FixedPoint, DampingStabilizesOscillation)
{
    // x -> -x oscillates undamped but converges to 0 with damping.
    FixedPointSolver damped(
        {.maxIterations = 500, .tolerance = 1e-10, .damping = 0.5,
         .recoveryLadder = false});
    auto res = damped.solve(
        [](const std::vector<double> &x) {
            return std::vector<double>{-x[0]};
        },
        {1.0});
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x[0], 0.0, 1e-8);
}

TEST(FixedPoint, RecoveryLadderRescuesOscillation)
{
    // x -> -x at damping 1.0: plain substitution bounces between 1 and
    // -1 forever. The same case fails with the ladder disabled and
    // converges with it enabled - the ladder's raison d'etre.
    auto oscillate = [](const std::vector<double> &x) {
        return std::vector<double>{-x[0]};
    };

    FixedPointSolver plain({.maxIterations = 200,
                            .tolerance = 1e-10,
                            .recoveryLadder = false});
    auto failed = plain.solve(oscillate, {1.0});
    EXPECT_FALSE(failed.converged);

    FixedPointSolver laddered(
        {.maxIterations = 200, .tolerance = 1e-10,
         .onNonConvergence = NonConvergencePolicy::Accept});
    auto res = laddered.solve(oscillate, {1.0});
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x[0], 0.0, 1e-8);
    // First rung (damping 1.0) failed; a heavier rung rescued it.
    ASSERT_GE(res.attempts.size(), 2u);
    EXPECT_FALSE(res.attempts.front().converged);
    EXPECT_TRUE(res.attempts.back().converged);
    EXPECT_LT(res.attempts.back().damping, 1.0);
}

TEST(FixedPoint, LadderRestartsFromOriginalX0)
{
    // The rescued solve must not inherit the diverged iterate of the
    // failed attempt: x -> -x from x0=1 with the ladder lands on 0,
    // which is only reachable by re-starting from a finite point.
    FixedPointSolver solver(
        {.maxIterations = 50, .tolerance = 1e-10,
         .onNonConvergence = NonConvergencePolicy::Accept});
    auto res = solver.solve(
        [](const std::vector<double> &x) {
            return std::vector<double>{0.5 * x[0] * x[0] - 4.0 * x[0]};
        },
        {0.5});
    // Whatever the outcome, every attempt starts fresh: the recorded
    // attempts never exceed maxIterations each.
    for (const auto &a : res.attempts)
        EXPECT_LE(a.iterations, 50);
}

TEST(FixedPoint, TrySolveReportsNonFiniteIterate)
{
    // An update that manufactures NaN on every attempt exhausts the
    // ladder and comes back as a structured error, not a panic.
    FixedPointSolver solver({.maxIterations = 20, .tolerance = 1e-9});
    auto res = solver.trySolve(
        [](const std::vector<double> &x) {
            return std::vector<double>{
                std::numeric_limits<double>::quiet_NaN() + x[0]};
        },
        {0.0});
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, SolveErrorCode::NonFiniteIterate);
    EXPECT_EQ(res.error().site, "FixedPointSolver::trySolve");
}

TEST(FixedPoint, SolveThrowsOnNonFiniteIterate)
{
    FixedPointSolver solver({.maxIterations = 20, .tolerance = 1e-9});
    EXPECT_THROW(solver.solve(
                     [](const std::vector<double> &) {
                         return std::vector<double>{
                             std::numeric_limits<double>::infinity()};
                     },
                     {0.0}),
                 SolveException);
}

TEST(FixedPoint, FatalPolicyThrowsOnNonConvergence)
{
    FixedPointSolver solver(
        {.maxIterations = 5, .tolerance = 1e-9,
         .onNonConvergence = NonConvergencePolicy::Fatal});
    try {
        solver.solve(
            [](const std::vector<double> &x) {
                return std::vector<double>{x[0] + 1.0};
            },
            {0.0});
        FAIL() << "expected SolveException";
    } catch (const SolveException &e) {
        EXPECT_EQ(e.error().code, SolveErrorCode::NonConvergence);
    }
}

TEST(FixedPoint, IterationBudgetCapsLadder)
{
    // Budget of 15 total iterations: the first attempt consumes 10,
    // the second at most 5, and the ladder stops there.
    FixedPointSolver solver(
        {.maxIterations = 10, .tolerance = 1e-9,
         .onNonConvergence = NonConvergencePolicy::Accept,
         .iterationBudget = 15});
    auto res = solver.solve(
        [](const std::vector<double> &x) {
            return std::vector<double>{x[0] + 1.0};
        },
        {0.0});
    EXPECT_FALSE(res.converged);
    EXPECT_TRUE(res.budgetExhausted);
    ASSERT_EQ(res.attempts.size(), 2u);
    EXPECT_EQ(res.attempts[0].iterations, 10);
    EXPECT_EQ(res.attempts[1].iterations, 5);
}

TEST(FixedPoint, TimeBudgetStopsLongSolves)
{
    // A zero-ish wall-clock budget halts a never-converging solve
    // almost immediately instead of grinding through the ladder.
    FixedPointSolver solver(
        {.maxIterations = 100000000, .tolerance = 1e-9,
         .onNonConvergence = NonConvergencePolicy::Accept,
         .timeBudget = 1e-6});
    auto res = solver.solve(
        [](const std::vector<double> &x) {
            return std::vector<double>{x[0] + 1.0};
        },
        {0.0});
    EXPECT_FALSE(res.converged);
    EXPECT_TRUE(res.budgetExhausted);
}

TEST(FixedPoint, ConvergedSolveHasNoBudgetFlags)
{
    FixedPointSolver solver;
    auto res = solver.solve(
        [](const std::vector<double> &x) { return x; }, {1.0});
    EXPECT_TRUE(res.converged);
    EXPECT_FALSE(res.budgetExhausted);
    EXPECT_FALSE(res.nonFinite);
    ASSERT_EQ(res.attempts.size(), 1u);
    EXPECT_TRUE(res.attempts[0].converged);
}

TEST(FixedPointDeath, DimensionChangePanics)
{
    FixedPointSolver solver;
    EXPECT_DEATH(solver.solve(
                     [](const std::vector<double> &) {
                         return std::vector<double>{1.0, 2.0};
                     },
                     {0.0}),
                 "dimension");
}

TEST(FixedPointDeath, BadOptionsPanic)
{
    EXPECT_DEATH(FixedPointSolver({.maxIterations = 0}), "maxIterations");
    EXPECT_DEATH(FixedPointSolver({.damping = 0.0}), "damping");
    EXPECT_DEATH(FixedPointSolver({.damping = 1.5}), "damping");
    EXPECT_DEATH(FixedPointSolver({.tolerance = 0.0}), "tolerance");
}

} // namespace
} // namespace snoop
