/** Unit tests for classic closed-network MVA ([LZGS84]). */

#include <gtest/gtest.h>

#include "queueing/mva_closed.hh"

namespace snoop {
namespace {

std::vector<ServiceCenter>
machineRepairman(double think, double service)
{
    return {{"think", CenterType::Delay, think},
            {"server", CenterType::Queueing, service}};
}

TEST(ExactMva, SingleCustomerHasNoQueueing)
{
    auto net = machineRepairman(2.0, 1.0);
    auto m = exactMva(net, 1);
    // X = 1 / (Z + D), no queueing with one customer
    EXPECT_NEAR(m.throughput, 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(m.centers[1].residenceTime, 1.0, 1e-12);
    EXPECT_NEAR(m.centers[1].utilization, 1.0 / 3.0, 1e-12);
}

TEST(ExactMva, ZeroPopulation)
{
    auto m = exactMva(machineRepairman(2.0, 1.0), 0);
    EXPECT_DOUBLE_EQ(m.throughput, 0.0);
    EXPECT_DOUBLE_EQ(m.centers[1].queueLength, 0.0);
}

TEST(ExactMva, MatchesClosedFormTwoCustomers)
{
    // Closed network, 2 customers, delay Z=2, queueing D=1.
    // MVA recursion by hand:
    //  N=1: Rq=1, X=1/3, Q=1/3
    //  N=2: Rq=1*(1+1/3)=4/3, X=2/(2+4/3)=0.6, Q=0.8
    auto m = exactMva(machineRepairman(2.0, 1.0), 2);
    EXPECT_NEAR(m.throughput, 0.6, 1e-12);
    EXPECT_NEAR(m.centers[1].queueLength, 0.8, 1e-12);
    EXPECT_NEAR(m.centers[1].utilization, 0.6, 1e-12);
}

TEST(ExactMva, BottleneckLimitsThroughput)
{
    std::vector<ServiceCenter> net = {
        {"cpu", CenterType::Queueing, 1.0},
        {"disk", CenterType::Queueing, 4.0},
    };
    auto m = exactMva(net, 50);
    // Heavy load: X -> 1 / D_max = 0.25.
    EXPECT_NEAR(m.throughput, 0.25, 1e-6);
    EXPECT_NEAR(m.centers[1].utilization, 1.0, 1e-5);
    // Little's law: queue lengths sum to the population.
    double total_q = 0.0;
    for (const auto &c : m.centers)
        total_q += c.queueLength;
    EXPECT_NEAR(total_q, 50.0, 1e-9);
}

TEST(ExactMva, LittlesLawHoldsEverywhere)
{
    std::vector<ServiceCenter> net = {
        {"think", CenterType::Delay, 5.0},
        {"a", CenterType::Queueing, 0.7},
        {"b", CenterType::Queueing, 1.3},
    };
    for (unsigned n : {1u, 3u, 7u, 20u}) {
        auto m = exactMva(net, n);
        double total_q = 0.0;
        for (size_t k = 0; k < net.size(); ++k) {
            // Q_k = X * R_k per center
            EXPECT_NEAR(m.centers[k].queueLength,
                        m.throughput * m.centers[k].residenceTime, 1e-9);
            total_q += m.centers[k].queueLength;
        }
        EXPECT_NEAR(total_q, static_cast<double>(n), 1e-9);
    }
}

TEST(ApproximateMva, CloseToExactModerateLoad)
{
    std::vector<ServiceCenter> net = {
        {"think", CenterType::Delay, 4.0},
        {"cpu", CenterType::Queueing, 1.0},
        {"disk", CenterType::Queueing, 2.0},
    };
    // Schweitzer's error peaks near the saturation knee; the textbook
    // band is "within a few percent", worst around 6-7%.
    for (unsigned n : {2u, 5u, 10u, 30u}) {
        auto exact = exactMva(net, n);
        auto approx = approximateMva(net, n);
        EXPECT_NEAR(approx.throughput, exact.throughput,
                    exact.throughput * 0.08)
            << "N=" << n;
    }
}

TEST(ApproximateMva, ExactForOneCustomer)
{
    auto net = machineRepairman(3.0, 1.5);
    auto exact = exactMva(net, 1);
    auto approx = approximateMva(net, 1);
    EXPECT_NEAR(approx.throughput, exact.throughput, 1e-9);
}

TEST(ApproximateMva, ZeroPopulation)
{
    auto m = approximateMva(machineRepairman(2.0, 1.0), 0);
    EXPECT_DOUBLE_EQ(m.throughput, 0.0);
}

TEST(ApproximateMva, ReportsIterations)
{
    auto m = approximateMva(machineRepairman(2.0, 1.0), 10);
    EXPECT_GE(m.iterations, 1);
}

TEST(MvaClosedDeath, InvalidInputs)
{
    EXPECT_EXIT(exactMva({}, 3), testing::ExitedWithCode(1),
                "at least one");
    std::vector<ServiceCenter> bad = {
        {"x", CenterType::Queueing, -1.0}};
    EXPECT_EXIT(exactMva(bad, 3), testing::ExitedWithCode(1),
                "bad demand");
    auto net = machineRepairman(1.0, 1.0);
    EXPECT_EXIT(approximateMva(net, 5, -1.0), testing::ExitedWithCode(1),
                "tolerance");
    EXPECT_EXIT(approximateMva(net, 5, 1e-9, 0), testing::ExitedWithCode(1),
                "iteration");
}

} // namespace
} // namespace snoop
