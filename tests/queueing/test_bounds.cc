/** Unit tests for asymptotic throughput bounds. */

#include <gtest/gtest.h>

#include "queueing/bounds.hh"

namespace snoop {
namespace {

std::vector<ServiceCenter>
demoNet()
{
    return {{"think", CenterType::Delay, 6.0},
            {"cpu", CenterType::Queueing, 1.0},
            {"disk", CenterType::Queueing, 2.0}};
}

TEST(Bounds, SandwichExactMva)
{
    auto net = demoNet();
    for (unsigned n : {1u, 2u, 4u, 8u, 16u, 64u}) {
        auto exact = exactMva(net, n);
        auto b = asymptoticBounds(net, n);
        EXPECT_LE(b.lower, exact.throughput + 1e-9) << "N=" << n;
        EXPECT_GE(b.upper, exact.throughput - 1e-9) << "N=" << n;
    }
}

TEST(Bounds, LightLoadRegime)
{
    auto b = asymptoticBounds(demoNet(), 1);
    // One customer: X = 1 / (D + Z) exactly; both bounds touch it.
    EXPECT_NEAR(b.upper, 1.0 / 9.0, 1e-12);
    EXPECT_NEAR(b.lower, 1.0 / 9.0, 1e-12);
}

TEST(Bounds, HeavyLoadCapsAtBottleneck)
{
    auto b = asymptoticBounds(demoNet(), 1000);
    EXPECT_NEAR(b.upper, 0.5, 1e-12); // 1 / D_max = 1/2
}

TEST(Bounds, SaturationPopulation)
{
    // N* = (D + Z) / D_max = (3 + 6) / 2 = 4.5
    EXPECT_NEAR(saturationPopulation(demoNet()), 4.5, 1e-12);
}

TEST(Bounds, ZeroPopulation)
{
    auto b = asymptoticBounds(demoNet(), 0);
    EXPECT_DOUBLE_EQ(b.lower, 0.0);
    EXPECT_DOUBLE_EQ(b.upper, 0.0);
}

TEST(Bounds, PureDelayNetworkNeverSaturates)
{
    std::vector<ServiceCenter> net = {
        {"think", CenterType::Delay, 5.0}};
    auto b = asymptoticBounds(net, 10);
    EXPECT_NEAR(b.upper, 2.0, 1e-12); // N / Z
    EXPECT_NEAR(b.lower, 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(saturationPopulation(net), 0.0);
}

} // namespace
} // namespace snoop
