/** Tests for exact MVA with load-dependent centers. */

#include <gtest/gtest.h>

#include "queueing/mva_load_dependent.hh"

namespace snoop {
namespace {

TEST(LoadDependent, ConstantRateReducesToPlainExactMva)
{
    std::vector<ServiceCenter> fixed = {
        {"think", CenterType::Delay, 4.0}};
    LoadDependentCenter server;
    server.name = "server";
    server.demand = 1.5;
    // empty rateMultipliers = constant rate
    for (unsigned n : {1u, 3u, 8u, 20u}) {
        auto ld = exactMvaLoadDependent(fixed, {server}, n);
        auto plain = exactMva({{"think", CenterType::Delay, 4.0},
                               {"server", CenterType::Queueing, 1.5}},
                              n);
        EXPECT_NEAR(ld.throughput, plain.throughput,
                    plain.throughput * 1e-9)
            << "N=" << n;
        EXPECT_NEAR(ld.ldCenters[0].queueLength,
                    plain.centers[1].queueLength, 1e-9);
    }
}

TEST(LoadDependent, MarginalsFormADistribution)
{
    std::vector<ServiceCenter> fixed = {
        {"think", CenterType::Delay, 2.0}};
    auto server = LoadDependentCenter::multiServer("srv", 1.0, 2, 10);
    auto res = exactMvaLoadDependent(fixed, {server}, 10);
    double sum = 0.0;
    for (double p : res.ldCenters[0].marginal) {
        EXPECT_GE(p, -1e-12);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(LoadDependent, MultiServerBeatsSingleServer)
{
    std::vector<ServiceCenter> fixed = {
        {"think", CenterType::Delay, 2.0}};
    auto one = LoadDependentCenter::multiServer("srv", 2.0, 1, 12);
    auto four = LoadDependentCenter::multiServer("srv", 2.0, 4, 12);
    auto r1 = exactMvaLoadDependent(fixed, {one}, 12);
    auto r4 = exactMvaLoadDependent(fixed, {four}, 12);
    EXPECT_GT(r4.throughput, r1.throughput);
    EXPECT_LT(r4.ldCenters[0].queueLength, r1.ldCenters[0].queueLength);
}

TEST(LoadDependent, ManyServersActLikeDelayCenter)
{
    // With as many servers as customers, nobody ever queues: the
    // center behaves as a pure delay, so X = N / (Z + D).
    std::vector<ServiceCenter> fixed = {
        {"think", CenterType::Delay, 3.0}};
    auto inf = LoadDependentCenter::multiServer("srv", 2.0, 10, 10);
    auto res = exactMvaLoadDependent(fixed, {inf}, 10);
    EXPECT_NEAR(res.throughput, 10.0 / (3.0 + 2.0), 1e-9);
    EXPECT_NEAR(res.ldCenters[0].residenceTime, 2.0, 1e-9);
}

TEST(LoadDependent, MachineRepairmanWithTwoRepairmenClosedForm)
{
    // 3 machines (exp think Z), 2 repairmen (exp service D): finite
    // birth-death chain with failure rate (3-j)/Z and repair rate
    // min(j,2)/D for j broken. Compare MVA against direct balance.
    const double z = 4.0, d = 1.0;
    const unsigned n = 3, c = 2;
    // birth-death steady state over j = 0..3 broken
    double pi[4];
    pi[0] = 1.0;
    double lam0 = 3.0 / z, lam1 = 2.0 / z, lam2 = 1.0 / z;
    double mu1 = 1.0 / d, mu2 = 2.0 / d, mu3 = 2.0 / d;
    pi[1] = pi[0] * lam0 / mu1;
    pi[2] = pi[1] * lam1 / mu2;
    pi[3] = pi[2] * lam2 / mu3;
    double total = pi[0] + pi[1] + pi[2] + pi[3];
    for (double &p : pi)
        p /= total;
    double mean_broken =
        1.0 * pi[1] + 2.0 * pi[2] + 3.0 * pi[3];

    std::vector<ServiceCenter> fixed = {
        {"machines", CenterType::Delay, z}};
    auto repair = LoadDependentCenter::multiServer("repair", d, c, n);
    auto res = exactMvaLoadDependent(fixed, {repair}, n);
    EXPECT_NEAR(res.ldCenters[0].queueLength, mean_broken, 1e-9);
    // throughput = failure rate = (N - mean_broken) / Z
    EXPECT_NEAR(res.throughput, (3.0 - mean_broken) / z, 1e-9);
}

TEST(LoadDependent, MemoryModulesAsMultiServerCenter)
{
    // The paper's machine: model the bus as a single server and the 4
    // memory modules as one 4-server center with demand d_mem = 3.
    // More modules must help when memory traffic is significant.
    std::vector<ServiceCenter> fixed = {
        {"proc", CenterType::Delay, 10.0},
        {"bus", CenterType::Queueing, 2.0},
    };
    auto mem1 = LoadDependentCenter::multiServer("mem", 3.0, 1, 16);
    auto mem4 = LoadDependentCenter::multiServer("mem", 3.0, 4, 16);
    auto r1 = exactMvaLoadDependent(fixed, {mem1}, 16);
    auto r4 = exactMvaLoadDependent(fixed, {mem4}, 16);
    EXPECT_GT(r4.throughput, r1.throughput * 1.2);
}

TEST(LoadDependentDeath, BadInputs)
{
    EXPECT_EXIT(exactMvaLoadDependent({}, {}, 3),
                testing::ExitedWithCode(1), "at least one");
    LoadDependentCenter bad;
    bad.name = "bad";
    bad.demand = -1.0;
    EXPECT_EXIT(exactMvaLoadDependent({}, {bad}, 3),
                testing::ExitedWithCode(1), "bad demand");
    LoadDependentCenter zero_rate;
    zero_rate.name = "zr";
    zero_rate.demand = 1.0;
    zero_rate.rateMultipliers = {0.0};
    EXPECT_EXIT(exactMvaLoadDependent({}, {zero_rate}, 2),
                testing::ExitedWithCode(1), "rate");
    EXPECT_EXIT(
        LoadDependentCenter::multiServer("x", 1.0, 0, 4),
        testing::ExitedWithCode(1), "server");
}

} // namespace
} // namespace snoop
