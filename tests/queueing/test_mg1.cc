/** Unit tests for open-system formulas and residual life. */

#include <gtest/gtest.h>

#include "queueing/mg1.hh"

namespace snoop {
namespace {

TEST(ResidualLife, DeterministicIsHalfMean)
{
    // The paper's eq. (10) residual terms are T/2 because bus access
    // times are deterministic.
    EXPECT_DOUBLE_EQ(meanResidualLifeDeterministic(9.0), 4.5);
    EXPECT_DOUBLE_EQ(meanResidualLifeDeterministic(1.0), 0.5);
}

TEST(ResidualLife, ExponentialEqualsMean)
{
    EXPECT_DOUBLE_EQ(meanResidualLifeExponential(3.0), 3.0);
}

TEST(ResidualLife, GeneralFormula)
{
    // E[S]=2, E[S^2]=6 -> residual = 6/4 = 1.5
    EXPECT_DOUBLE_EQ(meanResidualLife(2.0, 6.0), 1.5);
}

TEST(ResidualLife, HigherVarianceMeansLongerResidual)
{
    double det = meanResidualLifeDeterministic(4.0);
    double expo = meanResidualLifeExponential(4.0);
    EXPECT_LT(det, expo);
}

TEST(Mm1, KnownValues)
{
    // rho = 0.5: W = rho / (mu (1 - rho)) = 0.5 / (1 * 0.5) = 1
    EXPECT_NEAR(mm1WaitingTime(0.5, 1.0), 1.0, 1e-12);
    EXPECT_NEAR(mm1NumberInSystem(0.5, 1.0), 1.0, 1e-12);
    // rho = 0.9: L = 9
    EXPECT_NEAR(mm1NumberInSystem(0.9, 1.0), 9.0, 1e-9);
}

TEST(Mm1, ZeroArrivalsZeroWait)
{
    EXPECT_DOUBLE_EQ(mm1WaitingTime(0.0, 1.0), 0.0);
}

TEST(Mg1, MatchesMm1ForExponentialService)
{
    // M/G/1 with exponential service (E[S^2] = 2 E[S]^2) must equal
    // M/M/1.
    double lambda = 0.6, mean_s = 1.0;
    EXPECT_NEAR(mg1WaitingTime(lambda, mean_s, 2.0 * mean_s * mean_s),
                mm1WaitingTime(lambda, 1.0 / mean_s), 1e-12);
}

TEST(Mg1, DeterministicServiceHalvesWait)
{
    double lambda = 0.6, mean_s = 1.0;
    double det = mg1WaitingTime(lambda, mean_s, mean_s * mean_s);
    double expo = mg1WaitingTime(lambda, mean_s, 2.0 * mean_s * mean_s);
    EXPECT_NEAR(det, expo / 2.0, 1e-12);
}

TEST(Mg1Death, InstabilityAndBadArgs)
{
    EXPECT_EXIT(mm1WaitingTime(1.0, 1.0), testing::ExitedWithCode(1),
                "unstable");
    EXPECT_EXIT(mm1WaitingTime(2.0, 1.0), testing::ExitedWithCode(1),
                "unstable");
    EXPECT_EXIT(mg1WaitingTime(1.5, 1.0, 1.0), testing::ExitedWithCode(1),
                "unstable");
    EXPECT_EXIT(meanResidualLife(0.0, 1.0), testing::ExitedWithCode(1),
                "positive");
    EXPECT_EXIT(meanResidualLife(2.0, 1.0), testing::ExitedWithCode(1),
                "below");
}

} // namespace
} // namespace snoop
