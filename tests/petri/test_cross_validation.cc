/**
 * Cross-model validation: for a workload with no broadcasts, the
 * bus-contention Petri net is exactly a closed product-form network
 * (exponential delay center = the processors, exponential FCFS
 * single-server = the bus), so its speedup must match exact MVA from
 * the queueing library to numerical precision. This pins both engines
 * against each other with no tolerance slack.
 */

#include <gtest/gtest.h>

#include "petri/coherence_net.hh"
#include "queueing/mva_closed.hh"

namespace snoop {
namespace {

/** Net speedup vs exact-MVA speedup for a no-broadcast workload. */
void
compareExact(unsigned n, double exec_time, double p_local, double t_read)
{
    CoherenceNetParams p;
    p.numProcessors = n;
    p.execTime = exec_time;
    p.pLocal = p_local;
    p.pBc = 0.0;
    p.pRr = 1.0 - p_local;
    p.tRead = t_read;
    auto cn = makeCoherenceNet(p);
    auto a = cn.net.analyze();
    double net_speedup = coherenceNetSpeedup(cn, a);

    // Per bus-visit cycle a customer executes Geometric(p_rr) bursts:
    // delay demand Z = execTime / p_rr, bus demand D = t_read.
    std::vector<ServiceCenter> centers = {
        {"proc", CenterType::Delay, exec_time / p.pRr},
        {"bus", CenterType::Queueing, t_read},
    };
    auto m = exactMva(centers, n);
    // Speedup = mean number of processors executing
    //         = X * Z = delay-center queue length.
    double mva_speedup = m.centers[0].queueLength;

    // The only modeling gap is the 1e-6 seize phase.
    EXPECT_NEAR(net_speedup, mva_speedup, 1e-4)
        << "N=" << n << " p_local=" << p_local << " t_read=" << t_read;

    // Bus utilization must agree too.
    EXPECT_NEAR(coherenceNetBusUtilization(cn, a),
                m.centers[1].utilization, 1e-4);
}

TEST(CrossValidation, NetEqualsExactMvaLightLoad)
{
    compareExact(2, 3.5, 0.9, 4.0);
}

TEST(CrossValidation, NetEqualsExactMvaModerateLoad)
{
    compareExact(3, 3.5, 0.8, 6.0);
    compareExact(4, 3.5, 0.9, 9.0);
}

TEST(CrossValidation, NetEqualsExactMvaHeavyLoad)
{
    // bus nearly saturated
    compareExact(4, 2.0, 0.5, 8.0);
}

TEST(CrossValidation, NetEqualsExactMvaSingleCustomer)
{
    compareExact(1, 5.0, 0.7, 10.0);
}

TEST(CrossValidation, HoldsAcrossServiceTimeScales)
{
    for (double t_read : {1.0, 3.0, 9.0, 27.0})
        compareExact(3, 3.5, 0.85, t_read);
}

} // namespace
} // namespace snoop
