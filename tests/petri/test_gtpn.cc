/** Unit tests for the timed Petri-net engine. */

#include <gtest/gtest.h>

#include "petri/gtpn.hh"
#include "random/rng.hh"

namespace snoop {
namespace {

TEST(Gtpn, TwoStateAlternatorTokenFractions)
{
    // One token alternating between A (mean 3) and B (mean 1):
    // time fraction in A = 3/4.
    Gtpn net;
    auto a = net.addPlace("A", 1);
    auto b = net.addPlace("B", 0);
    auto ab = net.addTransition("a->b", 3.0);
    net.addInput(ab, a);
    net.addOutcome(ab, 1.0, {{b, 1}});
    auto ba = net.addTransition("b->a", 1.0);
    net.addInput(ba, b);
    net.addOutcome(ba, 1.0, {{a, 1}});

    auto r = net.analyze();
    EXPECT_EQ(r.numStates, 2u);
    EXPECT_NEAR(r.meanTokens[a], 0.75, 1e-9);
    EXPECT_NEAR(r.meanTokens[b], 0.25, 1e-9);
    // Each transition fires once per cycle of mean length 4.
    EXPECT_NEAR(r.throughput[ab], 0.25, 1e-9);
    EXPECT_NEAR(r.throughput[ba], 0.25, 1e-9);
    EXPECT_NEAR(r.utilization[ab], 0.75, 1e-9);
}

TEST(Gtpn, ProbabilisticBranchSplitsThroughput)
{
    // A fires and routes to B with 0.3, C with 0.7; both return to A.
    Gtpn net;
    auto a = net.addPlace("A", 1);
    auto b = net.addPlace("B", 0);
    auto c = net.addPlace("C", 0);
    auto go = net.addTransition("go", 1.0);
    net.addInput(go, a);
    net.addOutcome(go, 0.3, {{b, 1}});
    net.addOutcome(go, 0.7, {{c, 1}});
    auto back_b = net.addTransition("back_b", 2.0);
    net.addInput(back_b, b);
    net.addOutcome(back_b, 1.0, {{a, 1}});
    auto back_c = net.addTransition("back_c", 2.0);
    net.addInput(back_c, c);
    net.addOutcome(back_c, 1.0, {{a, 1}});

    auto r = net.analyze();
    EXPECT_EQ(r.numStates, 3u);
    // Branch throughputs in ratio 3:7.
    EXPECT_NEAR(r.throughput[back_b] / r.throughput[back_c], 3.0 / 7.0,
                1e-9);
    // Flow conservation: go fires as often as both returns combined.
    EXPECT_NEAR(r.throughput[go],
                r.throughput[back_b] + r.throughput[back_c], 1e-12);
}

TEST(Gtpn, TwoMachineNetMatchesClosedFormCtmc)
{
    // Two machines, each alternating exp(4) up-time and exp(1) repair,
    // with per-machine fail/repair transitions. Under race semantics
    // the repairman token never binds (both repairs can race), so each
    // machine is an independent two-state CTMC with availability
    // mu / (lambda + mu) = 0.8 and the expected mean number of
    // machines up is 1.6.
    Gtpn net3;
    auto m0_up = net3.addPlace("m0_up", 1);
    auto m1_up = net3.addPlace("m1_up", 1);
    auto m0_down = net3.addPlace("m0_down", 0);
    auto m1_down = net3.addPlace("m1_down", 0);
    auto idle = net3.addPlace("repairman", 1);
    auto f0 = net3.addTransition("fail0", 4.0);
    net3.addInput(f0, m0_up);
    net3.addOutcome(f0, 1.0, {{m0_down, 1}});
    auto f1 = net3.addTransition("fail1", 4.0);
    net3.addInput(f1, m1_up);
    net3.addOutcome(f1, 1.0, {{m1_down, 1}});
    auto r0 = net3.addTransition("repair0", 1.0);
    net3.addInput(r0, m0_down);
    net3.addInput(r0, idle);
    net3.addOutcome(r0, 1.0, {{m0_up, 1}, {idle, 1}});
    auto r1 = net3.addTransition("repair1", 1.0);
    net3.addInput(r1, m1_down);
    net3.addInput(r1, idle);
    net3.addOutcome(r1, 1.0, {{m1_up, 1}, {idle, 1}});

    auto res = net3.analyze();
    double mean_up = 2.0 * (1.0 / (0.25 + 1.0)); // 2 * mu/(lambda+mu)
    EXPECT_NEAR(res.meanTokens[m0_up] + res.meanTokens[m1_up], mean_up,
                1e-9);
    // Per-machine throughput: one failure per mean cycle of 5 cycles,
    // and flow conservation between fail and repair.
    EXPECT_NEAR(res.throughput[f0], 0.2, 1e-9);
    EXPECT_NEAR(res.throughput[r0], 0.2, 1e-9);
    EXPECT_NEAR(res.throughput[f1], res.throughput[r1], 1e-12);
}

TEST(Gtpn, CountReachableStatesGrowsWithTokens)
{
    auto build = [](uint32_t tokens) {
        Gtpn net;
        auto a = net.addPlace("A", tokens);
        auto b = net.addPlace("B", 0);
        auto ab = net.addTransition("a->b", 1.0);
        net.addInput(ab, a);
        net.addOutcome(ab, 1.0, {{b, 1}});
        auto ba = net.addTransition("b->a", 1.0);
        net.addInput(ba, b);
        net.addOutcome(ba, 1.0, {{a, 1}});
        return net;
    };
    // k tokens over 2 places: k+1 markings.
    EXPECT_EQ(build(1).countReachableStates(), 2u);
    EXPECT_EQ(build(4).countReachableStates(), 5u);
    EXPECT_EQ(build(10).countReachableStates(), 11u);
}

TEST(Gtpn, RandomConservativeNetsConserveTokens)
{
    // Property: in a conservative net (every transition consumes and
    // produces the same token count), the time-average total token
    // count equals the initial total, regardless of topology.
    Rng rng(777);
    for (int trial = 0; trial < 25; ++trial) {
        Gtpn net;
        size_t num_places = 2 + rng.uniformInt(3);
        uint32_t total_tokens = 0;
        std::vector<PlaceId> places;
        for (size_t p = 0; p < num_places; ++p) {
            uint32_t init = static_cast<uint32_t>(rng.uniformInt(3));
            if (p == 0)
                init += 1; // guarantee at least one token
            total_tokens += init;
            places.push_back(
                net.addPlace("p" + std::to_string(p), init));
        }
        size_t num_transitions = 1 + rng.uniformInt(4);
        for (size_t t = 0; t < num_transitions; ++t) {
            auto id = net.addTransition("t" + std::to_string(t),
                                        rng.uniform(0.5, 5.0));
            PlaceId from = places[rng.uniformInt(places.size())];
            PlaceId to = places[rng.uniformInt(places.size())];
            net.addInput(id, from, 1);
            net.addOutcome(id, 1.0, {{to, 1}});
        }
        // Guarantee liveness: every place (including place 0) gets a
        // drain transition into the next place around a ring, so no
        // marking can deadlock.
        for (size_t p = 0; p < num_places; ++p) {
            auto id = net.addTransition("drain" + std::to_string(p),
                                        1.0);
            net.addInput(id, places[p], 1);
            net.addOutcome(id, 1.0,
                           {{places[(p + 1) % num_places], 1}});
        }
        auto a = net.analyze(50000);
        double mean_total = 0.0;
        for (size_t p = 0; p < num_places; ++p)
            mean_total += a.meanTokens[p];
        EXPECT_NEAR(mean_total, static_cast<double>(total_tokens), 1e-9)
            << "trial " << trial;
    }
}

TEST(Gtpn, ExportedCtmcStationaryMatchesAnalyze)
{
    // Two independent computation paths: analyze() weights the
    // embedded jump chain by sojourn times, toCtmc().stationary()
    // solves the jump chain of the exported CTMC. The marking
    // distributions must agree, and therefore so must mean tokens.
    Gtpn net;
    auto a = net.addPlace("A", 2);
    auto b = net.addPlace("B", 0);
    auto ab = net.addTransition("a->b", 3.0);
    net.addInput(ab, a);
    net.addOutcome(ab, 0.7, {{b, 1}});
    net.addOutcome(ab, 0.3, {{a, 1}}); // probabilistic self-route
    auto ba = net.addTransition("b->a", 1.5);
    net.addInput(ba, b);
    net.addOutcome(ba, 1.0, {{a, 1}});

    auto analysis = net.analyze();
    auto exported = net.toCtmc();
    auto pi = exported.chain.stationary();

    double mean_a = 0.0, mean_b = 0.0;
    for (size_t s = 0; s < pi.size(); ++s) {
        mean_a += pi[s] * exported.markings[s][a];
        mean_b += pi[s] * exported.markings[s][b];
    }
    EXPECT_NEAR(mean_a, analysis.meanTokens[a], 1e-9);
    EXPECT_NEAR(mean_b, analysis.meanTokens[b], 1e-9);
}

TEST(Gtpn, MixingTimeBoundsSimulatorWarmup)
{
    // The transient analysis answers "how long until the detailed
    // model forgets that it started with all processors executing" -
    // exactly the warm-up question. The mixing time should be a small
    // multiple of the longest activity, far below the warm-up the
    // simulator defaults use.
    Gtpn net;
    auto think = net.addPlace("think", 1);
    auto wait = net.addPlace("wait", 0);
    auto exec = net.addTransition("exec", 3.5);
    net.addInput(exec, think);
    net.addOutcome(exec, 0.9, {{think, 1}});
    net.addOutcome(exec, 0.1, {{wait, 1}});
    auto bus = net.addTransition("bus", 9.0);
    net.addInput(bus, wait);
    net.addOutcome(bus, 1.0, {{think, 1}});

    auto exported = net.toCtmc();
    std::vector<double> initial(exported.markings.size(), 0.0);
    initial[0] = 1.0; // the all-executing start state
    double mix = exported.chain.mixingTime(initial, 5.0, 2000.0, 1e-3);
    ASSERT_GT(mix, 0.0);
    // the warm-up defaults (thousands of requests, each >= 3.5
    // cycles) dwarf the mixing horizon of the underlying dynamics
    EXPECT_LT(mix, 1000.0);
}

TEST(GtpnDeath, DeadlockIsFatal)
{
    Gtpn net;
    auto a = net.addPlace("A", 0); // no token anywhere
    auto t = net.addTransition("t", 1.0);
    net.addInput(t, a);
    net.addOutcome(t, 1.0, {{a, 1}});
    EXPECT_EXIT(net.analyze(), testing::ExitedWithCode(1), "deadlock");
}

TEST(GtpnDeath, BadOutcomeProbabilities)
{
    Gtpn net;
    auto a = net.addPlace("A", 1);
    auto t = net.addTransition("t", 1.0);
    net.addInput(t, a);
    net.addOutcome(t, 0.5, {{a, 1}});
    EXPECT_EXIT(net.analyze(), testing::ExitedWithCode(1), "sum to");
}

TEST(GtpnDeath, StateSpaceCapEnforced)
{
    // Unbounded net: a source transition pumps tokens forever.
    Gtpn net;
    auto a = net.addPlace("A", 1);
    auto b = net.addPlace("B", 0);
    auto t = net.addTransition("pump", 1.0);
    net.addInput(t, a);
    net.addOutcome(t, 1.0, {{a, 1}, {b, 1}});
    EXPECT_EXIT(net.analyze(100), testing::ExitedWithCode(1),
                "reachable markings");
}

TEST(GtpnDeath, ConstructionErrors)
{
    Gtpn net;
    EXPECT_EXIT(net.addTransition("t", 0.0), testing::ExitedWithCode(1),
                "positive duration");
    auto a = net.addPlace("A", 1);
    auto t = net.addTransition("t", 1.0);
    EXPECT_EXIT(net.addInput(t, 99), testing::ExitedWithCode(1),
                "bad place");
    EXPECT_EXIT(net.addInput(99, a), testing::ExitedWithCode(1),
                "bad transition");
    EXPECT_EXIT(net.addInput(t, a, 0), testing::ExitedWithCode(1),
                "zero-token");
    EXPECT_EXIT(net.addOutcome(t, 1.5, {}), testing::ExitedWithCode(1),
                "bad probability");
}

} // namespace
} // namespace snoop
