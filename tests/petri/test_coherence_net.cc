/**
 * Tests for the bus-contention Petri net and its agreement with the
 * MVA model - the small-N detailed-baseline validation of the paper's
 * methodology (Section 4.2), with the net in the GTPN's role.
 */

#include <gtest/gtest.h>

#include "mva/solver.hh"
#include "petri/coherence_net.hh"

namespace snoop {
namespace {

CoherenceNetParams
fromDerived(const DerivedInputs &d, unsigned n)
{
    CoherenceNetParams p;
    p.numProcessors = n;
    p.execTime = d.tau + d.timing.tSupply;
    p.pLocal = d.pLocal;
    p.pBc = d.pBc;
    p.pRr = d.pRr;
    p.tWrite = d.timing.tWrite;
    p.tRead = d.tRead;
    return p;
}

TEST(CoherenceNet, SingleProcessorSpeedupMatchesMvaClosely)
{
    auto d = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::writeOnce());
    auto cn = makeCoherenceNet(fromDerived(d, 1));
    auto a = cn.net.analyze();
    MvaSolver solver;
    double mva = solver.solve(d, 1).speedup;
    // No contention at N=1: both models reduce to the same cycle
    // structure; exponential vs deterministic timing does not change
    // the mean.
    EXPECT_NEAR(coherenceNetSpeedup(cn, a), mva, mva * 0.01);
}

TEST(CoherenceNet, TracksMvaForSmallSystems)
{
    // The net has exponential firing times where the MVA assumes
    // deterministic bus access (and the MVA additionally models memory
    // and cache interference), so agreement is looser than the
    // simulator's: the models must track each other within ~15%.
    auto d = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::writeOnce());
    MvaSolver solver;
    for (unsigned n : {2u, 3u, 4u}) {
        auto cn = makeCoherenceNet(fromDerived(d, n));
        auto a = cn.net.analyze();
        double net_speedup = coherenceNetSpeedup(cn, a);
        double mva_speedup = solver.solve(d, n).speedup;
        EXPECT_NEAR(net_speedup, mva_speedup, mva_speedup * 0.15)
            << "N=" << n;
    }
}

TEST(CoherenceNet, BusUtilizationConsistentWithMva)
{
    auto d = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::writeOnce());
    MvaSolver solver;
    auto cn = makeCoherenceNet(fromDerived(d, 4));
    auto a = cn.net.analyze();
    double net_util = coherenceNetBusUtilization(cn, a);
    double mva_util = solver.solve(d, 4).busUtil;
    EXPECT_NEAR(net_util, mva_util, 0.08);
}

TEST(CoherenceNet, StateSpaceExplodesWithProcessors)
{
    // The motivation for the MVA model (Section 3.2): detailed-model
    // cost grows exponentially in N while the MVA cost is flat.
    auto d = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::writeOnce());
    size_t prev = 0;
    for (unsigned n : {1u, 2u, 3u, 4u, 5u}) {
        auto cn = makeCoherenceNet(fromDerived(d, n));
        size_t states = cn.net.countReachableStates();
        EXPECT_GT(states, prev) << "N=" << n;
        if (n >= 2) {
            // at least geometric growth (factor > 2 per processor)
            EXPECT_GE(states, prev * 2) << "N=" << n;
        }
        prev = states;
    }
    EXPECT_GE(prev, 200u); // N=5 already needs hundreds of markings
}

TEST(CoherenceNet, ZeroBroadcastWorkloadOmitsBroadcastPath)
{
    CoherenceNetParams p;
    p.numProcessors = 2;
    p.pLocal = 0.9;
    p.pBc = 0.0;
    p.pRr = 0.1;
    auto cn = makeCoherenceNet(p);
    auto a = cn.net.analyze();
    for (auto t : cn.busBc)
        EXPECT_DOUBLE_EQ(a.throughput[t], 0.0);
    EXPECT_GT(a.throughput[cn.busRr[0]], 0.0);
}

TEST(CoherenceNet, SpeedupBoundedByN)
{
    auto d = DerivedInputs::compute(
        presets::appendixA(SharingLevel::TwentyPercent),
        ProtocolConfig::fromModString("1"));
    for (unsigned n : {1u, 2u, 3u}) {
        auto cn = makeCoherenceNet(fromDerived(d, n));
        auto a = cn.net.analyze();
        double s = coherenceNetSpeedup(cn, a);
        EXPECT_GT(s, 0.0);
        EXPECT_LE(s, static_cast<double>(n));
    }
}

TEST(CoherenceNetDeath, BadParams)
{
    CoherenceNetParams p;
    p.pLocal = 0.5; // sums to 0.5 + 0.08 + 0.06 != 1
    EXPECT_EXIT(makeCoherenceNet(p), testing::ExitedWithCode(1),
                "sum to 1");
    CoherenceNetParams q;
    q.numProcessors = 0;
    EXPECT_EXIT(makeCoherenceNet(q), testing::ExitedWithCode(1),
                "at least one");
}

} // namespace
} // namespace snoop
