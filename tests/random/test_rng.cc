/** Unit and statistical tests for random/rng. */

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "random/rng.hh"

namespace snoop {
namespace {

TEST(SplitMix, KnownSequence)
{
    // Reference values for SplitMix64 seeded with 0 (widely published).
    uint64_t s = 0;
    EXPECT_EQ(splitMix64(s), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(splitMix64(s), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(splitMix64(s), 0x06c45d188009454fULL);
}

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(42);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversRangeUniformly)
{
    Rng r(99);
    const uint64_t k = 7;
    const int n = 70000;
    std::map<uint64_t, int> counts;
    for (int i = 0; i < n; ++i) {
        uint64_t v = r.uniformInt(k);
        ASSERT_LT(v, k);
        counts[v]++;
    }
    // Each bucket expects n/k = 10000; allow 5% deviation.
    for (uint64_t v = 0; v < k; ++v)
        EXPECT_NEAR(counts[v], n / static_cast<int>(k), 500);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng r(5);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateCases)
{
    Rng r(5);
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
}

TEST(Rng, ExponentialMeanAndPositivity)
{
    Rng r(11);
    const int n = 200000;
    double sum = 0, sumsq = 0;
    for (int i = 0; i < n; ++i) {
        double x = r.exponential(2.5);
        ASSERT_GT(x, 0.0);
        sum += x;
        sumsq += x * x;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 2.5, 0.05);
    // exponential: variance = mean^2
    EXPECT_NEAR(var, 6.25, 0.25);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng r(13);
    const int n = 100000;
    double sum = 0;
    for (int i = 0; i < n; ++i) {
        uint64_t x = r.geometric(0.25);
        ASSERT_GE(x, 1u);
        sum += static_cast<double>(x);
    }
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, GeometricWithPOneIsAlwaysOne)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.geometric(1.0), 1u);
}

TEST(Rng, DiscreteMatchesWeights)
{
    Rng r(23);
    std::vector<double> w = {1.0, 2.0, 7.0};
    const int n = 100000;
    std::vector<int> counts(3, 0);
    for (int i = 0; i < n; ++i)
        counts[r.discrete(w)]++;
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(Rng, DiscreteSkipsZeroWeights)
{
    Rng r(29);
    std::vector<double> w = {0.0, 1.0, 0.0};
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(r.discrete(w), 1u);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic)
{
    Rng parent1(77), parent2(77);
    Rng childA = parent1.fork();
    Rng childB = parent2.fork();
    // Same parent seed -> same child stream.
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(childA.next(), childB.next());
    // Child differs from a fresh sibling fork.
    Rng childC = parent1.fork();
    int same = 0;
    Rng childA2(77);
    childA2 = Rng(77).fork();
    for (int i = 0; i < 64; ++i)
        same += (childC.next() == childA2.next());
    EXPECT_LT(same, 2);
}

TEST(RngDeath, InvalidParametersPanic)
{
    Rng r(1);
    EXPECT_DEATH(r.exponential(0.0), "mean");
    EXPECT_DEATH(r.exponential(-1.0), "mean");
    EXPECT_DEATH(r.geometric(0.0), "geometric");
    EXPECT_DEATH(r.geometric(1.5), "geometric");
    EXPECT_DEATH(r.uniformInt(0), "positive");
    EXPECT_DEATH(r.discrete({}), "positive sum");
    EXPECT_DEATH(r.discrete({0.0, 0.0}), "positive sum");
    EXPECT_DEATH(r.discrete({-1.0, 2.0}), "negative");
    EXPECT_DEATH(r.uniform(2.0, 1.0), "empty range");
}

} // namespace
} // namespace snoop
