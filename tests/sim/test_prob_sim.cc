/**
 * Tests for the probabilistic-workload simulator, including the
 * MVA-vs-simulation agreement that reproduces the paper's validation
 * methodology.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "mva/solver.hh"
#include "sim/prob_sim.hh"
#include "util/parallel.hh"

namespace snoop {
namespace {

SimConfig
baseConfig(SharingLevel level, const std::string &mods, unsigned n)
{
    SimConfig cfg;
    cfg.numProcessors = n;
    cfg.workload = presets::appendixA(level);
    cfg.protocol = ProtocolConfig::fromModString(mods);
    cfg.seed = 42;
    cfg.warmupRequests = 5000;
    cfg.measuredRequests = 120000;
    return cfg;
}

TEST(ProbSim, DeterministicGivenSeed)
{
    auto cfg = baseConfig(SharingLevel::FivePercent, "", 4);
    cfg.measuredRequests = 20000;
    auto a = simulate(cfg);
    auto b = simulate(cfg);
    EXPECT_DOUBLE_EQ(a.speedup, b.speedup);
    EXPECT_DOUBLE_EQ(a.busUtilization, b.busUtilization);
    EXPECT_EQ(a.requestsMeasured, b.requestsMeasured);
}

TEST(ProbSim, DifferentSeedsAgreeStatistically)
{
    auto cfg = baseConfig(SharingLevel::FivePercent, "", 4);
    auto a = simulate(cfg);
    cfg.seed = 4242;
    auto b = simulate(cfg);
    EXPECT_NEAR(a.speedup, b.speedup, a.speedup * 0.03);
}

TEST(ProbSim, SingleProcessorMatchesMvaExactly)
{
    // With one processor there is no contention; the simulator's mean
    // cycle must match the MVA's R up to sampling noise.
    auto cfg = baseConfig(SharingLevel::FivePercent, "", 1);
    auto sim = simulate(cfg);
    MvaSolver solver;
    auto mva = solver.solve(
        DerivedInputs::compute(cfg.workload, cfg.protocol, cfg.timing), 1);
    EXPECT_NEAR(sim.speedup, mva.speedup, mva.speedup * 0.01);
    EXPECT_NEAR(sim.busUtilization, mva.busUtil, 0.01);
    EXPECT_DOUBLE_EQ(sim.meanBusWait, 0.0);
}

class ProbSimVsMva
    : public testing::TestWithParam<std::tuple<SharingLevel, const char *>>
{
};

TEST_P(ProbSimVsMva, SpeedupWithinPaperErrorBand)
{
    // The paper reports MVA-vs-detailed-model agreement within ~3-5%
    // (Sections 4.2-4.3). Our simulator plays the detailed model's
    // role; require <= 8% across the whole sweep (the worst case sits
    // at the bus knee, exactly where the paper's own GTPN deviations
    // peak).
    auto [level, mods] = GetParam();
    MvaSolver solver;
    for (unsigned n : {2u, 6u, 10u}) {
        auto cfg = baseConfig(level, mods, n);
        auto sim = simulate(cfg);
        auto mva = solver.solve(
            DerivedInputs::compute(cfg.workload, cfg.protocol,
                                   cfg.timing), n);
        double rel = (mva.speedup - sim.speedup) / sim.speedup;
        EXPECT_LE(std::abs(rel), 0.08)
            << "N=" << n << " mva=" << mva.speedup
            << " sim=" << sim.speedup;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ProbSimVsMva,
    testing::Combine(testing::ValuesIn(kSharingLevels),
                     testing::Values("", "1", "14", "23")));

TEST(ProbSim, BusUtilizationGrowsWithN)
{
    double prev = 0.0;
    for (unsigned n : {1u, 4u, 8u}) {
        auto r = simulate(baseConfig(SharingLevel::FivePercent, "", n));
        EXPECT_GT(r.busUtilization, prev);
        prev = r.busUtilization;
    }
    EXPECT_GT(prev, 0.8); // N=8 runs the bus hot at 5% sharing
}

TEST(ProbSim, Mod1ReducesBusTraffic)
{
    auto wo = simulate(baseConfig(SharingLevel::FivePercent, "", 8));
    auto m1 = simulate(baseConfig(SharingLevel::FivePercent, "1", 8));
    EXPECT_GT(m1.speedup, wo.speedup);
    EXPECT_LT(m1.busUtilization, wo.busUtilization + 0.02);
}

TEST(ProbSim, StressWorkloadStaysWithinBand)
{
    // Section 4.3: high cache-interference stress test; MVA within 5%
    // of the detailed model (we allow 8% for simulation noise).
    SimConfig cfg;
    cfg.numProcessors = 6;
    cfg.workload = presets::stressTest();
    cfg.protocol = ProtocolConfig::writeOnce();
    cfg.seed = 7;
    cfg.warmupRequests = 5000;
    cfg.measuredRequests = 150000;
    auto sim = simulate(cfg);
    MvaSolver solver;
    auto mva = solver.solve(
        DerivedInputs::compute(cfg.workload, cfg.protocol, cfg.timing), 6);
    EXPECT_NEAR(mva.speedup, sim.speedup, sim.speedup * 0.08);
}

TEST(ProbSim, SnoopDelayAppearsUnderSharing)
{
    // The 20% sharing workload generates snoop duties; the mean snoop
    // delay must be visible (nonzero) and small relative to R.
    auto r = simulate(baseConfig(SharingLevel::TwentyPercent, "", 8));
    EXPECT_GT(r.meanSnoopDelay, 0.0);
    EXPECT_LT(r.meanSnoopDelay, r.responseTime.mean);
}

TEST(ProbSim, ConfidenceIntervalCoversLongRun)
{
    auto cfg = baseConfig(SharingLevel::FivePercent, "", 4);
    auto quick = simulate(cfg);
    cfg.measuredRequests = 400000;
    cfg.seed = 999;
    auto longer = simulate(cfg);
    // long-run estimate should be near the short run's CI
    EXPECT_NEAR(longer.responseTime.mean, quick.responseTime.mean,
                4.0 * quick.responseTime.halfWidth +
                    0.01 * quick.responseTime.mean);
}

TEST(ProbSim, ReportsMeasurementMetadata)
{
    auto cfg = baseConfig(SharingLevel::FivePercent, "", 2);
    cfg.measuredRequests = 30000;
    auto r = simulate(cfg);
    EXPECT_EQ(r.requestsMeasured, 30000u);
    EXPECT_GT(r.simulatedCycles, 0.0);
    EXPECT_EQ(r.numProcessors, 2u);
    EXPECT_NE(r.summary().find("speedup="), std::string::npos);
}

TEST(ProbSim, HistogramCollectsWhenRequested)
{
    auto cfg = baseConfig(SharingLevel::FivePercent, "", 4);
    cfg.measuredRequests = 50000;
    cfg.collectHistogram = true;
    auto r = simulate(cfg);
    ASSERT_TRUE(r.responseHistogram.has_value());
    EXPECT_EQ(r.responseHistogram->count(), 50000u);
    // histogram mean region must bracket the reported mean
    double median = r.responseHistogram->quantile(0.5);
    EXPECT_GT(median, 0.0);
    EXPECT_LT(median, r.responseTime.mean * 2.0);
    // off by default
    cfg.collectHistogram = false;
    auto r2 = simulate(cfg);
    EXPECT_FALSE(r2.responseHistogram.has_value());
}

TEST(ProbSim, HistogramTailGrowsWithContention)
{
    auto light = baseConfig(SharingLevel::FivePercent, "", 2);
    light.collectHistogram = true;
    light.histogramMax = 500.0;
    auto heavy = baseConfig(SharingLevel::FivePercent, "", 12);
    heavy.collectHistogram = true;
    heavy.histogramMax = 500.0;
    auto rl = simulate(light);
    auto rh = simulate(heavy);
    EXPECT_GT(rh.responseHistogram->quantile(0.95),
              rl.responseHistogram->quantile(0.95));
}

TEST(ProbSim, RandomOrderBusMatchesFcfsSpeedup)
{
    // The paper's Section 2.1 equivalence claim, at system level: the
    // GTPN's random-order bus and the MVA's FCFS bus yield the same
    // speedup in the detailed simulation.
    auto cfg = baseConfig(SharingLevel::FivePercent, "", 8);
    cfg.measuredRequests = 300000;
    auto fcfs = simulate(cfg);
    cfg.busDiscipline = BusDiscipline::RandomOrder;
    auto random = simulate(cfg);
    EXPECT_NEAR(random.speedup, fcfs.speedup, fcfs.speedup * 0.02);
    EXPECT_NEAR(random.meanBusWait, fcfs.meanBusWait,
                fcfs.meanBusWait * 0.05 + 0.05);
}

TEST(ProbSimDeath, BadConfig)
{
    // This binary spawns pool workers; fork-style death tests from a
    // multithreaded process can wedge (notably under TSan), so re-exec.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    SimConfig cfg;
    cfg.numProcessors = 0;
    EXPECT_EXIT(simulate(cfg), testing::ExitedWithCode(1),
                "at least one");
    SimConfig cfg2;
    cfg2.workload = presets::appendixA(SharingLevel::FivePercent);
    cfg2.measuredRequests = 0;
    EXPECT_EXIT(simulate(cfg2), testing::ExitedWithCode(1),
                "measuredRequests");
}

TEST(Replications, SerialAndParallelAreBitIdentical)
{
    // The determinism contract: per-replication seeds derive from
    // (base.seed, index) alone, so the thread count must not change a
    // single bit of the output.
    auto cfg = baseConfig(SharingLevel::FivePercent, "", 4);
    cfg.warmupRequests = 2000;
    cfg.measuredRequests = 10000;

    setParallelJobs(1);
    auto serial = simulateReplications(cfg, 6);
    for (unsigned jobs : {2u, 8u}) {
        setParallelJobs(jobs);
        auto parallel = simulateReplications(cfg, 6);
        ASSERT_EQ(parallel.runs.size(), serial.runs.size());
        for (size_t i = 0; i < serial.runs.size(); ++i) {
            EXPECT_DOUBLE_EQ(parallel.runs[i].speedup,
                             serial.runs[i].speedup)
                << "jobs=" << jobs << " rep=" << i;
            EXPECT_DOUBLE_EQ(parallel.runs[i].responseTime.mean,
                             serial.runs[i].responseTime.mean);
            EXPECT_DOUBLE_EQ(parallel.runs[i].busUtilization,
                             serial.runs[i].busUtilization);
            EXPECT_EQ(parallel.runs[i].requestsMeasured,
                      serial.runs[i].requestsMeasured);
        }
        EXPECT_DOUBLE_EQ(parallel.speedup.mean, serial.speedup.mean);
        EXPECT_DOUBLE_EQ(parallel.speedup.halfWidth,
                         serial.speedup.halfWidth);
    }
    setParallelJobs(0);
}

TEST(Replications, SubstreamsAreIndependentButReproducible)
{
    auto cfg = baseConfig(SharingLevel::FivePercent, "", 4);
    cfg.warmupRequests = 2000;
    cfg.measuredRequests = 10000;
    auto set = simulateReplications(cfg, 4);
    ASSERT_EQ(set.runs.size(), 4u);
    // Replications use distinct substreams: identical outputs would
    // mean the seed derivation collapsed.
    EXPECT_NE(set.runs[0].speedup, set.runs[1].speedup);
    // And the across-replication CI covers every run's own estimate
    // region (loose sanity bound).
    EXPECT_GT(set.speedup.mean, 0.0);
    EXPECT_TRUE(std::isfinite(set.speedup.halfWidth));
    EXPECT_EQ(set.speedup.batches, 4u);
    // Reproducible: the same call yields the same set.
    auto again = simulateReplications(cfg, 4);
    EXPECT_DOUBLE_EQ(again.speedup.mean, set.speedup.mean);
}

TEST(ReplicationsDeath, ZeroReplications)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto cfg = baseConfig(SharingLevel::FivePercent, "", 2);
    EXPECT_EXIT(simulateReplications(cfg, 0), testing::ExitedWithCode(1),
                "at least one replication");
}

} // namespace
} // namespace snoop
