/** Unit tests for the set-associative cache array. */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace snoop {
namespace {

TEST(CacheArray, MissesOnEmpty)
{
    CacheArray c(4, 2);
    EXPECT_EQ(c.lookup(12), LineState::Invalid);
    EXPECT_FALSE(c.contains(12));
    EXPECT_EQ(c.validLines(), 0u);
}

TEST(CacheArray, FillThenHit)
{
    CacheArray c(4, 2);
    auto ev = c.fill(12, LineState::SharedClean);
    EXPECT_FALSE(ev.valid);
    EXPECT_EQ(c.lookup(12), LineState::SharedClean);
    EXPECT_TRUE(c.contains(12));
    EXPECT_EQ(c.validLines(), 1u);
}

TEST(CacheArray, SetStateTransitions)
{
    CacheArray c(4, 2);
    c.fill(8, LineState::SharedClean);
    c.setState(8, LineState::ExclusiveDirty);
    EXPECT_EQ(c.lookup(8), LineState::ExclusiveDirty);
    c.setState(8, LineState::Invalid); // removes the line
    EXPECT_FALSE(c.contains(8));
    EXPECT_EQ(c.validLines(), 0u);
}

TEST(CacheArray, LruEvictionWithinSet)
{
    CacheArray c(1, 2); // single set, 2 ways
    c.fill(1, LineState::SharedClean);
    c.fill(2, LineState::SharedClean);
    c.touch(1); // block 2 is now LRU
    auto ev = c.fill(3, LineState::SharedClean);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.block, 2u);
    EXPECT_TRUE(c.contains(1));
    EXPECT_TRUE(c.contains(3));
    EXPECT_FALSE(c.contains(2));
}

TEST(CacheArray, EvictionReportsVictimState)
{
    CacheArray c(1, 1);
    c.fill(1, LineState::ExclusiveDirty);
    auto ev = c.fill(2, LineState::SharedClean);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.block, 1u);
    EXPECT_EQ(ev.state, LineState::ExclusiveDirty);
}

TEST(CacheArray, BlocksMapToSetsByModulo)
{
    CacheArray c(4, 1);
    // blocks 0 and 4 collide; 1 goes elsewhere
    c.fill(0, LineState::SharedClean);
    c.fill(1, LineState::SharedClean);
    auto ev = c.fill(4, LineState::SharedClean);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.block, 0u);
    EXPECT_TRUE(c.contains(1));
}

TEST(CacheArray, InvalidLinesPreferredOverEviction)
{
    CacheArray c(1, 2);
    c.fill(1, LineState::SharedClean);
    c.fill(2, LineState::SharedClean);
    c.setState(1, LineState::Invalid);
    auto ev = c.fill(3, LineState::SharedClean);
    EXPECT_FALSE(ev.valid); // reused the invalidated way
    EXPECT_TRUE(c.contains(2));
    EXPECT_TRUE(c.contains(3));
}

TEST(CacheArray, ForEachValidVisitsAll)
{
    CacheArray c(8, 2);
    c.fill(1, LineState::SharedClean);
    c.fill(2, LineState::ExclusiveDirty);
    c.fill(3, LineState::SharedDirty);
    int count = 0;
    int dirty = 0;
    c.forEachValid([&](uint64_t, LineState s) {
        ++count;
        dirty += isDirty(s);
    });
    EXPECT_EQ(count, 3);
    EXPECT_EQ(dirty, 2);
}

TEST(CacheArrayDeath, ApiMisuse)
{
    CacheArray c(2, 1);
    EXPECT_DEATH(c.setState(9, LineState::SharedClean), "not resident");
    EXPECT_DEATH(c.touch(9), "not resident");
    c.fill(1, LineState::SharedClean);
    EXPECT_DEATH(c.fill(1, LineState::SharedClean), "already resident");
    EXPECT_DEATH(c.fill(5, LineState::Invalid), "Invalid");
    EXPECT_EXIT(CacheArray(0, 1), testing::ExitedWithCode(1),
                "at least one");
}

} // namespace
} // namespace snoop
