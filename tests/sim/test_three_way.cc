/**
 * Three-way cross-validation of independent engines on a common
 * special case. Workload: no broadcasts (amod = 1), every miss
 * memory-supplied (csupply = 0), no victim write-backs (rep = 0), so
 * the system is exactly a machine-repairman network - processors as a
 * delay stage, the bus as a single server. With exponential bus times:
 *
 *  - the Petri-net engine solves the CTMC exactly;
 *  - exact closed MVA (queueing library) solves the product-form
 *    network exactly;
 *  - the discrete-event simulator estimates it with a CI.
 *
 * All three must agree: Petri == MVA to numerical precision, and the
 * simulator within its confidence interval. This catches systematic
 * errors in any one engine that module-level tests cannot see.
 */

#include <gtest/gtest.h>

#include "petri/coherence_net.hh"
#include "queueing/mva_closed.hh"
#include "sim/prob_sim.hh"

namespace snoop {
namespace {

/** The machine-repairman workload (no broadcasts, memory-only). */
WorkloadParams
repairmanWorkload()
{
    WorkloadParams p = presets::appendixA(SharingLevel::OnePercent);
    p.amodPrivate = 1.0; // no write-hit-unmodified -> no broadcasts
    p.amodSw = 1.0;
    p.csupplySro = 0.0;  // all misses memory-supplied
    p.csupplySw = 0.0;
    p.repP = 0.0;        // no victim write-backs
    p.repSw = 0.0;
    return p;
}

struct ThreeWay
{
    double mva;   // exact closed MVA speedup
    double petri; // CTMC speedup
    double sim;   // simulated speedup
    ConfidenceInterval simCi;
};

ThreeWay
runAll(unsigned n)
{
    WorkloadParams wl = repairmanWorkload();
    auto d = DerivedInputs::compute(wl, ProtocolConfig::writeOnce());
    EXPECT_NEAR(d.pBc, 0.0, 1e-12);
    EXPECT_NEAR(d.tRead, d.timing.tReadMem, 1e-12);

    ThreeWay out;

    // exact closed MVA: delay demand = (tau + T_supply) / p_rr per bus
    // visit, bus demand = tReadMem
    std::vector<ServiceCenter> centers = {
        {"proc", CenterType::Delay,
         (wl.tau + d.timing.tSupply) / d.pRr},
        {"bus", CenterType::Queueing, d.timing.tReadMem},
    };
    auto m = exactMva(centers, n);
    out.mva = m.centers[0].queueLength; // mean processors executing

    // Petri net
    CoherenceNetParams cp;
    cp.numProcessors = n;
    cp.execTime = wl.tau + d.timing.tSupply;
    cp.pLocal = d.pLocal;
    cp.pBc = 0.0;
    cp.pRr = d.pRr;
    cp.tRead = d.timing.tReadMem;
    auto cn = makeCoherenceNet(cp);
    out.petri = coherenceNetSpeedup(cn, cn.net.analyze());

    // simulator with exponential bus times
    SimConfig sc;
    sc.numProcessors = n;
    sc.workload = wl;
    sc.protocol = ProtocolConfig::writeOnce();
    sc.exponentialBusTimes = true;
    sc.seed = 1234 + n;
    sc.warmupRequests = 10000;
    sc.measuredRequests = 400000;
    auto r = simulate(sc);
    out.sim = r.speedup;
    out.simCi = r.speedupCi;
    return out;
}

class ThreeWayAgreement : public testing::TestWithParam<unsigned>
{
};

TEST_P(ThreeWayAgreement, AllEnginesAgree)
{
    unsigned n = GetParam();
    auto t = runAll(n);
    // Petri CTMC vs product-form MVA: both exact (up to the 1e-6
    // seize phase in the net).
    EXPECT_NEAR(t.petri, t.mva, 1e-3) << "N=" << n;
    // Simulator vs exact value: within ~4 half-widths (99.99%-ish) or
    // 1% relative, whichever is looser.
    double slack =
        std::max(4.0 * t.simCi.halfWidth, 0.01 * t.mva);
    EXPECT_NEAR(t.sim, t.mva, slack) << "N=" << n;
}

INSTANTIATE_TEST_SUITE_P(SmallSystems, ThreeWayAgreement,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(ThreeWay, DeterministicBusBeatsExponential)
{
    // Same workload with deterministic (paper) timing: less service
    // variability means shorter waits and higher speedup at load.
    WorkloadParams wl = repairmanWorkload();
    SimConfig sc;
    sc.numProcessors = 8;
    sc.workload = wl;
    sc.protocol = ProtocolConfig::writeOnce();
    sc.seed = 5;
    sc.measuredRequests = 300000;
    auto det = simulate(sc);
    sc.exponentialBusTimes = true;
    auto expo = simulate(sc);
    EXPECT_GT(det.speedup, expo.speedup);
}

} // namespace
} // namespace snoop
