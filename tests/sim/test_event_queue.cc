/** Unit tests for the discrete-event core. */

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace snoop {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsAreFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            q.scheduleAfter(1.0, chain);
    };
    q.schedule(0.0, chain);
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(fired, 10);
    EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, RunUntilStopsEarly)
{
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        q.schedule(static_cast<double>(i), [&] { ++fired; });
    q.runUntil([&] { return fired >= 10; });
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(q.size(), 90u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    double seen = -1.0;
    q.schedule(5.0, [&] {
        q.scheduleAfter(2.5, [&] { seen = q.now(); });
    });
    while (!q.empty())
        q.runNext();
    EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue q;
    q.schedule(5.0, [] {});
    q.runNext();
    EXPECT_DEATH(q.schedule(4.0, [] {}), "past");
    EXPECT_DEATH(q.scheduleAfter(-1.0, [] {}), "negative");
}

TEST(EventQueueDeath, RunNextOnEmptyPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.runNext(), "empty");
}

} // namespace
} // namespace snoop
