/** Tests for the trace-driven simulator mode. */

#include <gtest/gtest.h>

#include "sim/trace_sim.hh"

namespace snoop {
namespace {

TraceSimConfig
baseConfig(unsigned n)
{
    TraceSimConfig cfg;
    cfg.numProcessors = n;
    cfg.workload = presets::appendixA(SharingLevel::FivePercent);
    cfg.protocol = ProtocolConfig::writeOnce();
    cfg.seed = 11;
    cfg.warmupRequests = 20000;
    cfg.measuredRequests = 60000;
    return cfg;
}

TEST(TraceSim, DeterministicGivenSeed)
{
    auto cfg = baseConfig(4);
    cfg.measuredRequests = 20000;
    auto a = simulateTrace(cfg);
    auto b = simulateTrace(cfg);
    EXPECT_DOUBLE_EQ(a.speedup, b.speedup);
    EXPECT_DOUBLE_EQ(a.measured.hitPrivate, b.measured.hitPrivate);
}

TEST(TraceSim, EmergentHitRatesTrackLocalityKnobs)
{
    auto cfg = baseConfig(4);
    auto r = simulateTrace(cfg);
    // The default trace config aims near the Appendix A hit rates; the
    // cache geometry makes them emergent, so allow generous bands.
    EXPECT_GT(r.measured.hitPrivate, 0.75);
    EXPECT_LT(r.measured.hitPrivate, 1.00);
    EXPECT_GT(r.measured.hitSro, 0.5);
    // shared-writable blocks suffer invalidations: lower hit rate
    EXPECT_LT(r.measured.hitSw, r.measured.hitSro + 0.2);
}

TEST(TraceSim, LargerCachesHitMoreOften)
{
    auto small = baseConfig(4);
    small.cacheSets = 16;
    small.cacheWays = 1;
    auto big = baseConfig(4);
    big.cacheSets = 256;
    big.cacheWays = 4;
    auto rs = simulateTrace(small);
    auto rb = simulateTrace(big);
    EXPECT_GT(rb.measured.hitPrivate, rs.measured.hitPrivate);
    EXPECT_GE(rb.speedup, rs.speedup);
}

TEST(TraceSim, SharingEmergesAcrossProcessors)
{
    auto cfg = baseConfig(8);
    cfg.workload = presets::appendixA(SharingLevel::TwentyPercent);
    auto r = simulateTrace(cfg);
    // With 8 processors over small shared pools, misses frequently
    // find a peer copy.
    EXPECT_GT(r.measured.csupplyShared, 0.2);
    EXPECT_LE(r.measured.csupplyShared, 1.0);
}

TEST(TraceSim, SingleProcessorSeesNoSharing)
{
    auto cfg = baseConfig(1);
    auto r = simulateTrace(cfg);
    EXPECT_DOUBLE_EQ(r.measured.csupplyShared, 0.0);
    EXPECT_DOUBLE_EQ(r.meanBusWait, 0.0);
    EXPECT_LE(r.speedup, 1.0);
}

TEST(TraceSim, SpeedupScalesThenSaturates)
{
    double s2 = simulateTrace(baseConfig(2)).speedup;
    double s6 = simulateTrace(baseConfig(6)).speedup;
    EXPECT_GT(s6, s2);
    EXPECT_LE(s6, 6.0);
}

TEST(TraceSim, Mod1DoesNotHurt)
{
    auto wo = baseConfig(6);
    auto m1 = baseConfig(6);
    m1.protocol = ProtocolConfig::fromModString("1");
    double swo = simulateTrace(wo).speedup;
    double sm1 = simulateTrace(m1).speedup;
    EXPECT_GT(sm1, swo * 0.98);
}

TEST(TraceSim, WriteThroughStyleMod4BroadcastsHeavily)
{
    auto cfg = baseConfig(4);
    cfg.workload = presets::appendixA(SharingLevel::TwentyPercent);
    auto wo = simulateTrace(cfg);
    cfg.protocol = ProtocolConfig::fromModString("4"); // write-through
    auto wt = simulateTrace(cfg);
    // Pure broadcast-update on every shared write: more bus traffic
    // per useful cycle at this sharing level.
    EXPECT_GE(wo.speedup, wt.speedup * 0.95);
}

TEST(TraceSim, MeasuredAmodIsAProbability)
{
    auto r = simulateTrace(baseConfig(6));
    EXPECT_GE(r.measured.amodPrivate, 0.0);
    EXPECT_LE(r.measured.amodPrivate, 1.0);
    EXPECT_GE(r.measured.repAll, 0.0);
    EXPECT_LE(r.measured.repAll, 1.0);
}

TEST(TraceSim, BusOpMixMatchesProtocolSignature)
{
    // Write-Once: write-word broadcasts, never invalidations.
    auto wo = simulateTrace(baseConfig(4));
    EXPECT_GT(wo.busOps.total(), 0u);
    EXPECT_EQ(wo.busOps.invalidates, 0u);
    EXPECT_GT(wo.busOps.writeWords, 0u);

    // Synapse (mod3): invalidations, never write-words.
    auto cfg = baseConfig(4);
    cfg.protocol = ProtocolConfig::fromModString("3");
    auto synapse = simulateTrace(cfg);
    EXPECT_GT(synapse.busOps.invalidates, 0u);
    EXPECT_EQ(synapse.busOps.writeWords, 0u);

    // Dragon (mods 1234): broadcast write-words, no invalidations.
    cfg.protocol = ProtocolConfig::fromModString("1234");
    auto dragon = simulateTrace(cfg);
    EXPECT_EQ(dragon.busOps.invalidates, 0u);
    EXPECT_GT(dragon.busOps.writeWords, 0u);
}

TEST(TraceSim, EveryProtocolIssuesReadsAndReadMods)
{
    for (const char *mods : {"", "1", "23", "134"}) {
        auto cfg = baseConfig(4);
        cfg.protocol = ProtocolConfig::fromModString(mods);
        cfg.measuredRequests = 30000;
        auto r = simulateTrace(cfg);
        EXPECT_GT(r.busOps.reads, 0u) << mods;
        EXPECT_GT(r.busOps.readMods, 0u) << mods;
        EXPECT_GT(r.busOps.writeBlocks, 0u) << mods;
    }
}

TEST(TraceSim, Mod1ReducesConsistencyTraffic)
{
    // Exclusive loads suppress first-write broadcasts/invalidations on
    // unshared data: mod1's consistency-op count must be lower.
    auto cfg3 = baseConfig(6);
    cfg3.protocol = ProtocolConfig::fromModString("3");
    auto cfg13 = baseConfig(6);
    cfg13.protocol = ProtocolConfig::fromModString("13");
    auto m3 = simulateTrace(cfg3);
    auto m13 = simulateTrace(cfg13);
    EXPECT_LT(m13.busOps.invalidates, m3.busOps.invalidates);
}

TEST(TraceSim, MigratorySharingRaisesDirtySupplyRate)
{
    // Migratory data (one hot sw block bounced between writers) should
    // leave the block modified when the next processor misses on it,
    // compared with a scattered pattern over many blocks.
    auto migratory = baseConfig(4);
    migratory.workload = presets::appendixA(SharingLevel::TwentyPercent);
    migratory.trace.swBlocks = 4;
    migratory.trace.swHotBlocks = 1;
    migratory.trace.swLocality = 0.95;

    auto scattered = baseConfig(4);
    scattered.workload = presets::appendixA(SharingLevel::TwentyPercent);
    scattered.trace.swBlocks = 512;
    scattered.trace.swHotBlocks = 256;
    scattered.trace.swLocality = 0.5;

    auto rm = simulateTrace(migratory);
    auto rs = simulateTrace(scattered);
    // migratory: the hot block is nearly always resident somewhere
    EXPECT_GT(rm.measured.csupplyShared, rs.measured.csupplyShared);
    // and the migratory hit rate on sw data is higher
    EXPECT_GT(rm.measured.hitSw, rs.measured.hitSw);
}

TEST(TraceSimDeath, BadConfig)
{
    TraceSimConfig cfg;
    cfg.numProcessors = 0;
    EXPECT_EXIT(simulateTrace(cfg), testing::ExitedWithCode(1),
                "at least one");
    TraceSimConfig cfg2;
    cfg2.cacheSets = 0;
    EXPECT_EXIT(simulateTrace(cfg2), testing::ExitedWithCode(1),
                "geometry");
}

} // namespace
} // namespace snoop
