/**
 * Tests for the hierarchical simulator and its agreement with the
 * hierarchical MVA extension (the detailed validation for E13, in the
 * spirit of the paper's Section 4.2).
 */

#include <gtest/gtest.h>

#include "sim/hier_sim.hh"
#include "util/parallel.hh"

namespace snoop {
namespace {

HierSimConfig
base(unsigned clusters, unsigned per, double p_remote)
{
    HierSimConfig cfg;
    cfg.machine.clusters = clusters;
    cfg.machine.processorsPerCluster = per;
    cfg.machine.pLocal = 0.92;
    cfg.machine.tLocalBus = 5.0;
    cfg.machine.pRemote = p_remote;
    cfg.machine.tGlobalBus = 9.0;
    cfg.seed = 17;
    cfg.warmupRequests = 10000;
    cfg.measuredRequests = 150000;
    return cfg;
}

TEST(HierSim, DeterministicGivenSeed)
{
    auto cfg = base(2, 2, 0.3);
    cfg.measuredRequests = 20000;
    auto a = simulateHierarchical(cfg);
    auto b = simulateHierarchical(cfg);
    EXPECT_DOUBLE_EQ(a.speedup, b.speedup);
}

TEST(HierSim, SingleProcessorMatchesClosedForm)
{
    auto cfg = base(1, 1, 0.3);
    auto r = simulateHierarchical(cfg);
    const auto &m = cfg.machine;
    double p_bus = 1.0 - m.pLocal;
    double expected = m.tau + m.tSupply +
        p_bus * (m.tLocalBus + m.pRemote * m.tGlobalBus);
    EXPECT_NEAR(r.responseTime.mean, expected, expected * 0.01);
    EXPECT_DOUBLE_EQ(r.wLocalBus, 0.0);
    EXPECT_DOUBLE_EQ(r.wGlobalBus, 0.0);
}

struct HierShape
{
    unsigned clusters;
    unsigned per;
    double pRemote;
    /** MVA-vs-sim tolerance: a few percent in general; the
     *  few-large-clusters + heavy-remote corner is simultaneous
     *  resource possession, which MVA only approximates (see
     *  mva/hierarchical.hh), so its budget is wider - and locked in
     *  here so regressions still surface. */
    double tolerance;
};

class HierSimVsMva : public testing::TestWithParam<HierShape>
{
};

TEST_P(HierSimVsMva, SpeedupWithinModelBand)
{
    auto [clusters, per, p_remote, tolerance] = GetParam();
    auto cfg = base(clusters, per, p_remote);
    auto sim = simulateHierarchical(cfg);
    auto mva = solveHierarchical(cfg.machine);
    ASSERT_TRUE(mva.converged);
    double rel = (mva.speedup - sim.speedup) / sim.speedup;
    EXPECT_LE(std::abs(rel), tolerance)
        << clusters << "x" << per << " pRemote=" << p_remote
        << " mva=" << mva.speedup << " sim=" << sim.speedup;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HierSimVsMva,
    testing::Values(HierShape{1, 4, 0.3, 0.08},
                    HierShape{2, 2, 0.3, 0.08},
                    HierShape{4, 4, 0.3, 0.08},
                    HierShape{4, 2, 0.7, 0.08},
                    HierShape{8, 2, 0.1, 0.08},
                    HierShape{2, 8, 0.5, 0.20}));

TEST(HierSim, UtilizationsTrackTheMva)
{
    auto cfg = base(4, 4, 0.3);
    auto sim = simulateHierarchical(cfg);
    auto mva = solveHierarchical(cfg.machine);
    EXPECT_NEAR(sim.localBusUtil, mva.localBusUtil, 0.06);
    EXPECT_NEAR(sim.globalBusUtil, mva.globalBusUtil, 0.06);
}

TEST(HierSim, MoreClustersRelieveLocalContention)
{
    auto flat = simulateHierarchical(base(1, 16, 0.3));
    auto split = simulateHierarchical(base(8, 2, 0.3));
    EXPECT_GT(split.speedup, flat.speedup);
    EXPECT_LT(split.wLocalBus, flat.wLocalBus);
}

TEST(HierSimDeath, BadConfig)
{
    // This binary spawns pool workers; fork-style death tests from a
    // multithreaded process can wedge (notably under TSan), so re-exec.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Bad machine topology is a library error now: the hierarchical
    // solver throws instead of exiting.
    HierSimConfig cfg;
    cfg.machine.clusters = 0;
    EXPECT_THROW(simulateHierarchical(cfg), SolveException);
    HierSimConfig cfg2;
    cfg2.measuredRequests = 0;
    EXPECT_EXIT(simulateHierarchical(cfg2), testing::ExitedWithCode(1),
                "measuredRequests");
}

TEST(HierReplications, SerialAndParallelAreBitIdentical)
{
    auto cfg = base(2, 2, 0.3);
    cfg.warmupRequests = 2000;
    cfg.measuredRequests = 10000;

    setParallelJobs(1);
    auto serial = simulateHierarchicalReplications(cfg, 5);
    for (unsigned jobs : {2u, 8u}) {
        setParallelJobs(jobs);
        auto parallel = simulateHierarchicalReplications(cfg, 5);
        ASSERT_EQ(parallel.runs.size(), serial.runs.size());
        for (size_t i = 0; i < serial.runs.size(); ++i) {
            EXPECT_DOUBLE_EQ(parallel.runs[i].speedup,
                             serial.runs[i].speedup)
                << "jobs=" << jobs << " rep=" << i;
            EXPECT_DOUBLE_EQ(parallel.runs[i].responseTime.mean,
                             serial.runs[i].responseTime.mean);
        }
        EXPECT_DOUBLE_EQ(parallel.speedup.mean, serial.speedup.mean);
        EXPECT_DOUBLE_EQ(parallel.speedup.halfWidth,
                         serial.speedup.halfWidth);
    }
    setParallelJobs(0);

    // Substreams are distinct, and the batch is reproducible.
    EXPECT_NE(serial.runs[0].speedup, serial.runs[1].speedup);
    EXPECT_EQ(serial.speedup.batches, 5u);
}

} // namespace
} // namespace snoop
