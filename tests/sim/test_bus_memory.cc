/** Unit tests for the bus and memory-module models. */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "sim/bus.hh"
#include "sim/event_queue.hh"
#include "sim/memory.hh"

namespace snoop {
namespace {

TEST(Bus, ImmediateGrantWhenIdle)
{
    EventQueue q;
    Bus bus(q);
    double granted = -1.0;
    bus.request([&](double t) {
        granted = t;
        bus.releaseAt(t + 2.0);
    });
    EXPECT_DOUBLE_EQ(granted, 0.0);
    while (!q.empty())
        q.runNext();
    EXPECT_FALSE(bus.busy());
}

TEST(Bus, FcfsOrderAndWaitTimes)
{
    EventQueue q;
    Bus bus(q);
    std::vector<int> order;
    auto txn = [&](int id, double dur) {
        bus.request([&, id, dur](double t) {
            order.push_back(id);
            bus.releaseAt(t + dur);
        });
    };
    q.schedule(0.0, [&] { txn(0, 5.0); });
    q.schedule(1.0, [&] { txn(1, 3.0); });
    q.schedule(2.0, [&] { txn(2, 1.0); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    // waits: 0 for txn0; txn1 queued at 1, granted at 5 (wait 4);
    // txn2 queued at 2, granted at 8 (wait 6). mean = 10/3.
    EXPECT_NEAR(bus.waitStats().mean(), 10.0 / 3.0, 1e-12);
}

TEST(Bus, UtilizationAccounting)
{
    EventQueue q;
    Bus bus(q);
    q.schedule(0.0, [&] {
        bus.request([&](double t) { bus.releaseAt(t + 3.0); });
    });
    q.schedule(10.0, [&] {
        bus.request([&](double t) { bus.releaseAt(t + 2.0); });
    });
    // sentinel event to advance the clock to 20
    q.schedule(20.0, [] {});
    while (!q.empty())
        q.runNext();
    EXPECT_NEAR(bus.utilization(20.0), 5.0 / 20.0, 1e-12);
}

TEST(Bus, ResetStatsStartsFreshWindow)
{
    EventQueue q;
    Bus bus(q);
    q.schedule(0.0, [&] {
        bus.request([&](double t) { bus.releaseAt(t + 4.0); });
    });
    while (!q.empty())
        q.runNext();
    bus.resetStats(4.0);
    EXPECT_EQ(bus.waitStats().count(), 0u);
    EXPECT_DOUBLE_EQ(bus.utilization(8.0), 0.0);
}

TEST(BusDeath, ReleaseWithoutHoldPanics)
{
    EventQueue q;
    Bus bus(q);
    EXPECT_DEATH(bus.releaseAt(1.0), "not held");
}

TEST(Bus, RandomOrderServesEveryRequest)
{
    EventQueue q;
    Bus bus(q, BusDiscipline::RandomOrder, 42);
    std::vector<int> served;
    auto txn = [&](int id) {
        bus.request([&, id](double t) {
            served.push_back(id);
            bus.releaseAt(t + 1.0);
        });
    };
    q.schedule(0.0, [&] {
        for (int i = 0; i < 20; ++i)
            txn(i);
    });
    while (!q.empty())
        q.runNext();
    ASSERT_EQ(served.size(), 20u);
    // all requests served exactly once
    std::vector<int> sorted = served;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
    // and, with overwhelming probability, not in FIFO order
    bool fifo = true;
    for (int i = 0; i < 20; ++i)
        fifo &= (served[static_cast<size_t>(i)] == i);
    EXPECT_FALSE(fifo);
}

TEST(Bus, RandomOrderAndFcfsHaveTheSameMeanWait)
{
    // Section 2.1: "Both scheduling disciplines have the same mean
    // waiting time, and thus yield the same predicted speedup
    // measures." Drive both disciplines with an identical arrival
    // pattern and compare the mean waits.
    auto run = [](BusDiscipline d) {
        EventQueue q;
        Bus bus(q, d, 99);
        Rng arrivals(7);
        double t = 0.0;
        for (int i = 0; i < 20000; ++i) {
            t += arrivals.exponential(4.0);
            q.schedule(t, [&bus] {
                bus.request([&bus](double g) {
                    bus.releaseAt(g + 3.0); // deterministic service
                });
            });
        }
        while (!q.empty())
            q.runNext();
        return bus.waitStats().mean();
    };
    double fcfs = run(BusDiscipline::Fcfs);
    double random = run(BusDiscipline::RandomOrder);
    EXPECT_NEAR(random, fcfs, fcfs * 0.03);
}

TEST(Memory, OccupyWhenFreeStartsImmediately)
{
    MemoryModules mem(4, 3.0);
    EXPECT_DOUBLE_EQ(mem.occupy(0, 5.0), 5.0);
}

TEST(Memory, BusyModuleDelaysNextAccess)
{
    MemoryModules mem(2, 3.0);
    EXPECT_DOUBLE_EQ(mem.occupy(1, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(mem.occupy(1, 1.0), 3.0); // waits for [0,3)
    EXPECT_DOUBLE_EQ(mem.occupy(0, 1.0), 1.0); // other module free
}

TEST(Memory, UtilizationCountsBusyTime)
{
    MemoryModules mem(4, 3.0);
    mem.occupy(0, 0.0);
    mem.occupy(1, 0.0);
    // 2 accesses x 3 cycles over 4 modules x 10 cycles
    EXPECT_NEAR(mem.utilization(10.0), 6.0 / 40.0, 1e-12);
}

TEST(Memory, RandomOccupySpreadsAcrossModules)
{
    MemoryModules mem(4, 3.0);
    Rng rng(7);
    // With all modules initially free at t=0, 100 random accesses at
    // earliest=0 serialize only within a module; roughly a quarter go
    // to each.
    double max_start = 0.0;
    for (int i = 0; i < 100; ++i)
        max_start = std::max(max_start, mem.occupyRandom(0.0, rng));
    // perfectly balanced would be 25 accesses x 3 = start 72; allow
    // wide slack but require real spreading (not all on one module =
    // start 297).
    EXPECT_LT(max_start, 150.0);
    EXPECT_GT(max_start, 50.0);
}

TEST(Memory, ResetStatsClearsIntegral)
{
    MemoryModules mem(2, 3.0);
    mem.occupy(0, 0.0);
    mem.resetStats(10.0);
    EXPECT_DOUBLE_EQ(mem.utilization(20.0), 0.0);
}

TEST(MemoryDeath, BadConstruction)
{
    EXPECT_EXIT(MemoryModules(0, 3.0), testing::ExitedWithCode(1),
                "at least one");
    EXPECT_EXIT(MemoryModules(4, 0.0), testing::ExitedWithCode(1),
                "latency");
}

} // namespace
} // namespace snoop
