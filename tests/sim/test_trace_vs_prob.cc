/**
 * Cross-mode validation: measure the emergent workload parameters in
 * a trace-driven run (real caches, real addresses), feed them into
 * the probabilistic simulator (the paper's workload treatment), and
 * compare. Agreement means the probabilistic abstraction of Section
 * 2.3 captures what matters about the address-level behavior - the
 * assumption the whole paper rests on.
 */

#include <gtest/gtest.h>

#include "sim/prob_sim.hh"
#include "sim/trace_sim.hh"

namespace snoop {
namespace {

TEST(TraceVsProb, MeasuredParametersReproduceTraceSpeedup)
{
    // 1. trace-driven run with real caches
    TraceSimConfig trace_cfg;
    trace_cfg.numProcessors = 6;
    trace_cfg.workload = presets::appendixA(SharingLevel::FivePercent);
    trace_cfg.protocol = ProtocolConfig::writeOnce();
    trace_cfg.seed = 2024;
    trace_cfg.warmupRequests = 30000;
    trace_cfg.measuredRequests = 200000;
    auto trace = simulateTrace(trace_cfg);

    // 2. build a probabilistic workload from the measurements
    WorkloadParams measured = trace_cfg.workload;
    measured.hPrivate = trace.measured.hitPrivate;
    measured.hSro = trace.measured.hitSro;
    measured.hSw = trace.measured.hitSw;
    measured.amodPrivate = trace.measured.amodPrivate;
    measured.amodSw = trace.measured.amodSw;
    measured.csupplySro = trace.measured.csupplyShared;
    measured.csupplySw = trace.measured.csupplyShared;
    measured.repP = trace.measured.repAll;
    measured.repSw = trace.measured.repAll;
    measured.validate();

    // 3. probabilistic run with the measured parameters
    SimConfig prob_cfg;
    prob_cfg.numProcessors = trace_cfg.numProcessors;
    prob_cfg.workload = measured;
    prob_cfg.protocol = trace_cfg.protocol;
    prob_cfg.seed = 99;
    prob_cfg.warmupRequests = 20000;
    prob_cfg.measuredRequests = 200000;
    auto prob = simulate(prob_cfg);

    // The probabilistic abstraction loses temporal correlation in the
    // address stream, so expect agreement within ~12%, not exactness.
    EXPECT_NEAR(prob.speedup, trace.speedup, trace.speedup * 0.12)
        << "trace=" << trace.speedup << " prob=" << prob.speedup;
    EXPECT_NEAR(prob.busUtilization, trace.busUtilization, 0.12);
}

TEST(TraceVsProb, AgreementHoldsForMod1Too)
{
    TraceSimConfig trace_cfg;
    trace_cfg.numProcessors = 6;
    trace_cfg.workload = presets::appendixA(SharingLevel::TwentyPercent);
    trace_cfg.protocol = ProtocolConfig::fromModString("1");
    trace_cfg.seed = 4096;
    trace_cfg.warmupRequests = 30000;
    trace_cfg.measuredRequests = 200000;
    auto trace = simulateTrace(trace_cfg);

    WorkloadParams measured = trace_cfg.workload;
    measured.hPrivate = trace.measured.hitPrivate;
    measured.hSro = trace.measured.hitSro;
    measured.hSw = trace.measured.hitSw;
    measured.amodPrivate = trace.measured.amodPrivate;
    measured.amodSw = trace.measured.amodSw;
    measured.csupplySro = trace.measured.csupplyShared;
    measured.csupplySw = trace.measured.csupplyShared;
    // adjustedFor(mod1) scales rep_p by 1.5; pre-divide so the
    // protocol-adjusted value equals the measured one.
    measured.repP = trace.measured.repAll / 1.5;
    measured.repSw = trace.measured.repAll;
    measured.validate();

    SimConfig prob_cfg;
    prob_cfg.numProcessors = 6;
    prob_cfg.workload = measured;
    prob_cfg.protocol = trace_cfg.protocol;
    prob_cfg.seed = 7;
    prob_cfg.measuredRequests = 200000;
    auto prob = simulate(prob_cfg);

    EXPECT_NEAR(prob.speedup, trace.speedup, trace.speedup * 0.15)
        << "trace=" << trace.speedup << " prob=" << prob.speedup;
}

} // namespace
} // namespace snoop
