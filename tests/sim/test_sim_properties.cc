/**
 * System-level property tests for the probabilistic simulator across
 * the protocol design space: structural invariants that must hold for
 * any configuration, plus ordering consistency between the simulator
 * and the analytical model.
 */

#include <gtest/gtest.h>

#include "mva/solver.hh"
#include "sim/prob_sim.hh"
#include "stats/series.hh"

namespace snoop {
namespace {

SimConfig
makeConfig(SharingLevel level, unsigned mods_idx, unsigned n)
{
    SimConfig cfg;
    cfg.numProcessors = n;
    cfg.workload = presets::appendixA(level);
    cfg.protocol = ProtocolConfig::fromIndex(mods_idx);
    cfg.seed = 7000 + mods_idx * 13 + n;
    cfg.warmupRequests = 4000;
    cfg.measuredRequests = 60000;
    return cfg;
}

class SimSpace
    : public testing::TestWithParam<std::tuple<SharingLevel, unsigned>>
{
};

TEST_P(SimSpace, StructuralInvariants)
{
    auto [level, idx] = GetParam();
    auto r = simulate(makeConfig(level, idx, 6));
    EXPECT_GT(r.speedup, 0.0);
    EXPECT_LE(r.speedup, 6.0 + 1e-9);
    EXPECT_GE(r.busUtilization, 0.0);
    EXPECT_LE(r.busUtilization, 1.0 + 1e-9);
    EXPECT_GE(r.memUtilization, 0.0);
    EXPECT_LE(r.memUtilization, 1.0 + 1e-9);
    EXPECT_GE(r.meanBusWait, 0.0);
    EXPECT_GE(r.meanSnoopDelay, 0.0);
    // the measured cycle must at least cover mean execution (tau=2.5)
    // plus the cache supply cycle
    EXPECT_GT(r.responseTime.mean, 3.4);
}

INSTANTIATE_TEST_SUITE_P(
    AllLevelsAllMods, SimSpace,
    testing::Combine(testing::ValuesIn(kSharingLevels),
                     testing::Range(0u, 16u)));

TEST(SimOrdering, SimAgreesWithMvaOnProtocolRanking)
{
    // The simulator must reproduce the paper's qualitative protocol
    // ordering at a saturated size: WriteOnce < mod1 < mods1+4.
    auto run = [&](const char *mods) {
        SimConfig cfg;
        cfg.numProcessors = 12;
        cfg.workload = presets::appendixA(SharingLevel::FivePercent);
        cfg.protocol = ProtocolConfig::fromModString(mods);
        cfg.seed = 99;
        cfg.measuredRequests = 200000;
        return simulate(cfg).speedup;
    };
    double wo = run("");
    double m1 = run("1");
    double m14 = run("14");
    EXPECT_GT(m1, wo);
    EXPECT_GT(m14, m1 * 0.98);
}

TEST(SimOrdering, SharingDegradesSpeedupInSim)
{
    auto run = [&](SharingLevel level) {
        SimConfig cfg;
        cfg.numProcessors = 10;
        cfg.workload = presets::appendixA(level);
        cfg.protocol = ProtocolConfig::writeOnce();
        cfg.seed = 55;
        cfg.measuredRequests = 200000;
        return simulate(cfg).speedup;
    };
    double s1 = run(SharingLevel::OnePercent);
    double s5 = run(SharingLevel::FivePercent);
    double s20 = run(SharingLevel::TwentyPercent);
    EXPECT_GT(s1, s5);
    EXPECT_GT(s5, s20);
}

TEST(SimMethodology, DefaultBatchSizeIsStatisticallySound)
{
    // Collect raw per-request cycle times and check that the default
    // batch size (5000) comfortably exceeds the minimum batch at which
    // batch means decorrelate.
    SimConfig cfg;
    cfg.numProcessors = 6;
    cfg.workload = presets::appendixA(SharingLevel::FivePercent);
    cfg.protocol = ProtocolConfig::writeOnce();
    cfg.seed = 31;
    cfg.measuredRequests = 120000;
    cfg.batchSize = 50; // tiny batches -> many batch means to analyze
    auto r = simulate(cfg);
    // The simulator does not expose raw samples; use the batch means
    // themselves: at batch 50 they are still autocorrelated, but
    // re-batching to the default size must decorrelate them.
    // (We validate via the series utilities on a synthetic run below.)
    EXPECT_GT(r.responseTime.batches, 1000u);
}

TEST(SimMethodology, WarmupCoversTheTransient)
{
    // Run with zero warm-up and a small measurement budget, then with
    // the default warm-up: the warmed estimate must not differ wildly,
    // showing the default warm-up is adequate at these sizes.
    SimConfig cold;
    cold.numProcessors = 8;
    cold.workload = presets::appendixA(SharingLevel::FivePercent);
    cold.protocol = ProtocolConfig::writeOnce();
    cold.seed = 77;
    cold.warmupRequests = 0;
    cold.measuredRequests = 150000;
    SimConfig warm = cold;
    warm.warmupRequests = 20000;
    auto rc = simulate(cold);
    auto rw = simulate(warm);
    EXPECT_NEAR(rc.speedup, rw.speedup, rw.speedup * 0.03);
}

} // namespace
} // namespace snoop
