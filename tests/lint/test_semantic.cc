/**
 * @file
 * Semantic-layer tests: the declaration/definition parser
 * (lint/parser.hh), the cross-TU symbol index (lint/symbols.hh), the
 * call graph with its resolution policy (lint/callgraph.hh), and the
 * four semantic passes (lint/semantic.hh) driven over synthetic
 * FileSets. The fixture suite (test_rules.cc / run_lint.sh) proves
 * the passes fire end-to-end; these tests pin the layer contracts —
 * scope tracking, linkage restrictions, witness chains, and the
 * flow-sensitive Expected tracking — that the fixtures rely on.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/callgraph.hh"
#include "lint/parser.hh"
#include "lint/semantic.hh"
#include "lint/symbols.hh"

using namespace snoop::lint;

namespace {

ParsedFile
parseSource(const std::string &src)
{
    return parseFile(lex(src));
}

FileSet
makeFiles(std::vector<std::pair<std::string, std::string>> sources)
{
    FileSet files;
    for (auto &[path, src] : sources)
        files.emplace(path, lex(src));
    return files;
}

const FunctionDef *
findDef(const ParsedFile &pf, const std::string &qualified)
{
    for (const FunctionDef &def : pf.functions)
        if (def.qualified == qualified)
            return &def;
    return nullptr;
}

// --- parser ----------------------------------------------------------

TEST(Parser, QualifiedDefinitionInsideNamespace)
{
    ParsedFile pf = parseSource(
        "namespace snoop {\n"
        "Expected<MvaResult>\n"
        "MvaSolver::trySolve(const DerivedInputs &d, unsigned n)\n"
        "{\n"
        "    return run(d, n);\n"
        "}\n"
        "} // namespace snoop\n");
    ASSERT_EQ(pf.functions.size(), 1u);
    const FunctionDef &def = pf.functions[0];
    EXPECT_EQ(def.name, "trySolve");
    EXPECT_EQ(def.qualified, "MvaSolver::trySolve");
    EXPECT_EQ(def.line, 3u);
    EXPECT_NE(def.returnText.find("Expected"), std::string::npos);
    EXPECT_FALSE(def.fileLocal);
    EXPECT_LT(def.bodyBegin, def.bodyEnd);
}

TEST(Parser, AnonymousNamespaceAndStaticAreFileLocal)
{
    ParsedFile pf = parseSource(
        "namespace {\n"
        "int helper() { return 1; }\n"
        "} // namespace\n"
        "static int quiet() { return 2; }\n"
        "int exported() { return 3; }\n");
    ASSERT_EQ(pf.functions.size(), 3u);
    EXPECT_TRUE(findDef(pf, "helper")->fileLocal);
    EXPECT_TRUE(findDef(pf, "quiet")->fileLocal);
    EXPECT_FALSE(findDef(pf, "exported")->fileLocal);
}

TEST(Parser, LambdaBodyStaysInEnclosingFunction)
{
    ParsedFile pf = parseSource(
        "void launch(unsigned n)\n"
        "{\n"
        "    parallelFor(n, [](size_t i) { work(i); });\n"
        "}\n");
    // One definition, not two: the lambda is part of launch's body.
    ASSERT_EQ(pf.functions.size(), 1u);
    EXPECT_EQ(pf.functions[0].name, "launch");
}

TEST(Parser, GlobalVariableFlags)
{
    ParsedFile pf = parseSource(
        "#include <mutex>\n"
        "namespace {\n"
        "std::mutex g_mutex;\n"
        "unsigned g_count SNOOP_GUARDED_BY(g_mutex) = 0;\n"
        "const double kPi = 3.14;\n"
        "thread_local int t_scratch = 0;\n"
        "MetricsRegistry registry SNOOP_GUARDED_BY(internal);\n"
        "} // namespace\n");
    ASSERT_EQ(pf.globals.size(), 5u);
    const GlobalVar &mu = pf.globals[0];
    EXPECT_EQ(mu.name, "g_mutex");
    EXPECT_TRUE(mu.selfSynchronizing);
    const GlobalVar &count = pf.globals[1];
    EXPECT_EQ(count.name, "g_count");
    EXPECT_EQ(count.guardedBy, "g_mutex");
    EXPECT_FALSE(count.isConst);
    EXPECT_TRUE(pf.globals[2].isConst);
    EXPECT_TRUE(pf.globals[3].isThreadLocal);
    EXPECT_EQ(pf.globals[4].guardedBy, "internal");
}

TEST(Parser, OperatorEqualsDefinitionIsNotAVariable)
{
    // The lexer emits single-char puncts, so the '==' here once read
    // as "global variable 'Key' with an initializer" and tripped the
    // guarded-shared-state pass on every out-of-line operator==.
    ParsedFile pf = parseSource(
        "bool\n"
        "Key::operator==(const Key &other) const\n"
        "{\n"
        "    return a == other.a;\n"
        "}\n"
        "bool\n"
        "Key::operator!=(const Key &other) const\n"
        "{\n"
        "    return !(*this == other);\n"
        "}\n");
    // Not indexed as functions either (the name token before '(' is
    // a punct) - the invariant is that no phantom global appears.
    EXPECT_TRUE(pf.globals.empty());
}

TEST(Parser, FunctionLocalStatic)
{
    ParsedFile pf = parseSource(
        "unsigned next()\n"
        "{\n"
        "    static unsigned counter = 0;\n"
        "    return ++counter;\n"
        "}\n");
    ASSERT_EQ(pf.globals.size(), 1u);
    EXPECT_EQ(pf.globals[0].name, "counter");
    EXPECT_TRUE(pf.globals[0].isFunctionLocal);
}

TEST(Parser, MultiLineDirectiveDoesNotDerailScopes)
{
    // A macro definition spanning continuation lines must be consumed
    // whole; the namespace after it must still be recognized (this
    // regressed once: the directive handler stopped at the first
    // token and the leftover soup swallowed `namespace snoop {`).
    ParsedFile pf = parseSource(
        "#define CHECK(x)     \\\n"
        "    do {             \\\n"
        "        probe(x);    \\\n"
        "    } while (0)\n"
        "namespace snoop {\n"
        "int after() { return 1; }\n"
        "} // namespace snoop\n");
    ASSERT_EQ(pf.functions.size(), 1u);
    EXPECT_EQ(pf.functions[0].name, "after");
}

TEST(Parser, MatchBracketNestsAllKinds)
{
    LexedFile lx = lex("f(a[b(c)], {d});");
    // Token 0 is `f`, token 1 is `(`.
    ASSERT_GT(lx.tokens.size(), 2u);
    size_t close = matchBracket(lx.tokens, 1);
    ASSERT_LT(close, lx.tokens.size());
    EXPECT_EQ(lx.tokens[close].text, ")");
    EXPECT_EQ(lx.tokens[close + 1].text, ";");
    // Unbalanced input degrades to tokens.size(), never a crash.
    LexedFile bad = lex("g(a, b");
    EXPECT_EQ(matchBracket(bad.tokens, 1), bad.tokens.size());
}

// --- symbol index ----------------------------------------------------

TEST(SymbolIndex, ReturnsExpectedIsConservative)
{
    FileSet files = makeFiles({
        {"src/a.cc",
         "Expected<int> tryLoad() { return 1; }\n"
         "Expected<void> check();\n"
         "void validate();\n"},
        {"src/b.cc",
         "Expected<void> check() { return {}; }\n"
         "Expected<void> validate() { return {}; }\n"
         "int plain() { return 0; }\n"},
    });
    SymbolIndex index = SymbolIndex::build(files);
    EXPECT_TRUE(index.returnsExpected("tryLoad"));
    EXPECT_TRUE(index.returnsExpected("check"));
    // Overload set disagrees (void vs Expected): degrade to false.
    EXPECT_FALSE(index.returnsExpected("validate"));
    EXPECT_FALSE(index.returnsExpected("plain"));
    EXPECT_FALSE(index.returnsExpected("unknown"));
    EXPECT_EQ(index.definitionsOf("check").size(), 1u);
    EXPECT_TRUE(index.isKnownFunction("tryLoad"));
    EXPECT_FALSE(index.isKnownFunction("unknown"));
}

// --- call graph ------------------------------------------------------

size_t
nodeOf(const SymbolIndex &index, const std::string &file,
       const std::string &name)
{
    const auto &funcs = index.functions();
    for (size_t i = 0; i < funcs.size(); ++i)
        if (funcs[i].file == file && funcs[i].def.name == name)
            return i;
    ADD_FAILURE() << file << ":" << name << " not indexed";
    return 0;
}

bool
hasEdge(const CallGraph &g, size_t from, size_t to)
{
    for (size_t next : g.edgesOf(from))
        if (next == to)
            return true;
    return false;
}

TEST(CallGraph, FileLocalDefinitionsResolveSameFileOnly)
{
    FileSet files = makeFiles({
        {"src/a.cc",
         "namespace { int split() { return 1; } }\n"
         "int useA() { return split(); }\n"},
        {"src/b.cc",
         "int useB() { return split(); }\n"},
    });
    SymbolIndex index = SymbolIndex::build(files);
    CallGraph g = CallGraph::build(index, files);
    size_t split_a = nodeOf(index, "src/a.cc", "split");
    EXPECT_TRUE(hasEdge(g, nodeOf(index, "src/a.cc", "useA"), split_a));
    // b.cc's `split` cannot be a.cc's internal-linkage helper.
    EXPECT_FALSE(hasEdge(g, nodeOf(index, "src/b.cc", "useB"), split_a));
}

TEST(CallGraph, MemberCallsNeverResolveToFreeFunctions)
{
    FileSet files = makeFiles({
        {"src/a.cc",
         "int render() { return 1; }\n"
         "int go(Widget &w) { return w.render(); }\n"},
    });
    SymbolIndex index = SymbolIndex::build(files);
    CallGraph g = CallGraph::build(index, files);
    EXPECT_FALSE(hasEdge(g, nodeOf(index, "src/a.cc", "go"),
                         nodeOf(index, "src/a.cc", "render")));
    // The call site itself is still recorded for name-based passes.
    bool saw = false;
    for (const CallSite &site :
         g.callsOf(nodeOf(index, "src/a.cc", "go")))
        saw = saw || site.callee == "render";
    EXPECT_TRUE(saw);
}

TEST(CallGraph, CallbackArgumentsCreateEdges)
{
    FileSet files = makeFiles({
        {"src/a.cc",
         "void loadImpl() { }\n"
         "void load() { std::call_once(g_flag, loadImpl); }\n"},
    });
    SymbolIndex index = SymbolIndex::build(files);
    CallGraph g = CallGraph::build(index, files);
    EXPECT_TRUE(hasEdge(g, nodeOf(index, "src/a.cc", "load"),
                        nodeOf(index, "src/a.cc", "loadImpl")));
}

TEST(CallGraph, FindPathReturnsWitnessChain)
{
    FileSet files = makeFiles({
        {"src/a.cc",
         "void deep() { }\n"
         "void mid() { deep(); }\n"
         "void top() { mid(); }\n"},
    });
    SymbolIndex index = SymbolIndex::build(files);
    CallGraph g = CallGraph::build(index, files);
    size_t top = nodeOf(index, "src/a.cc", "top");
    size_t mid = nodeOf(index, "src/a.cc", "mid");
    size_t deep = nodeOf(index, "src/a.cc", "deep");
    auto chain = g.findPath(top, [&](size_t n) { return n == deep; });
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(chain[0], top);
    EXPECT_EQ(chain[1], mid);
    EXPECT_EQ(chain[2], deep);
    EXPECT_TRUE(
        g.findPath(deep, [&](size_t n) { return n == top; }).empty());
}

// --- semantic passes -------------------------------------------------

std::vector<Finding>
runOn(std::vector<std::pair<std::string, std::string>> sources)
{
    return runSemanticPasses(makeFiles(std::move(sources)));
}

TEST(FatalReachability, WitnessChainInMessage)
{
    // src/core/ is entry scope but not a numeric-guard boundary, so
    // only the fatal pass speaks here.
    auto findings = runOn({
        {"src/core/run.cc",
         "namespace {\n"
         "void inner() { fatal(\"boom\"); }\n"
         "}\n"
         "int tryRun() { inner(); return 0; }\n"},
    });
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "fatal-reachability");
    EXPECT_NE(findings[0].message.find("tryRun -> inner -> fatal()"),
              std::string::npos)
        << findings[0].message;
    EXPECT_NE(findings[0].message.find("src/core/run.cc:2"),
              std::string::npos);
}

TEST(FatalReachability, MarkerSuppressesTheSink)
{
    auto findings = runOn({
        {"src/core/run.cc",
         "namespace {\n"
         "// snoop-lint: fatal-ok\n"
         "void inner() { fatal(\"boom\"); }\n"
         "}\n"
         "int tryRun() { inner(); return 0; }\n"},
    });
    EXPECT_TRUE(findings.empty());
}

TEST(UncheckedExpected, TrackedVariableNeverConsulted)
{
    auto findings = runOn({
        {"src/a.cc",
         "Expected<int> tryLoad() { return 1; }\n"
         "void use()\n"
         "{\n"
         "    auto r = tryLoad();\n"
         "    unrelated();\n"
         "}\n"},
    });
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unchecked-expected");
    EXPECT_NE(findings[0].message.find("never consulted"),
              std::string::npos);
}

TEST(UncheckedExpected, NegationCheckSilences)
{
    auto findings = runOn({
        {"src/a.cc",
         "Expected<int> tryLoad() { return 1; }\n"
         "int use()\n"
         "{\n"
         "    auto r = tryLoad();\n"
         "    if (!r)\n"
         "        return 0;\n"
         "    return r.value();\n"
         "}\n"},
    });
    EXPECT_TRUE(findings.empty());
}

TEST(GuardedSharedState, AccessorMustNameTheMutex)
{
    // The accessor sits well below the declaration so the doc-comment
    // lookback window cannot see the annotation's own mutex name.
    auto findings = runOn({
        {"src/a.cc",
         "namespace {\n"
         "unsigned g_n SNOOP_GUARDED_BY(g_mutex) = 0;\n"
         "}\n"
         "\n"
         "\n"
         "\n"
         "namespace {\n"
         "void bump() { ++g_n; }\n"
         "}\n"
         "void run(unsigned n) { parallelFor(n, [] { bump(); }); }\n"},
    });
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "guarded-shared-state");
    EXPECT_NE(findings[0].message.find("without naming the mutex"),
              std::string::npos);
}

TEST(GuardedSharedState, UnreachableStateIsNotFlagged)
{
    // No parallelFor anywhere: nothing is worker-reachable.
    auto findings = runOn({
        {"src/a.cc",
         "namespace {\n"
         "unsigned g_n = 0;\n"
         "void bump() { ++g_n; }\n"
         "}\n"
         "void run() { bump(); }\n"},
    });
    EXPECT_TRUE(findings.empty());
}

TEST(NumericGuardCoverage, DirectGuardCovers)
{
    auto findings = runOn({
        {"src/mva/solver.cc",
         "double trySolve()\n"
         "{\n"
         "    NumericGuard guard(\"trySolve\");\n"
         "    return compute();\n"
         "}\n"},
    });
    EXPECT_TRUE(findings.empty());
}

TEST(NumericGuardCoverage, SameFileValidatorCovers)
{
    // The validator's SolveError return type marks it as the
    // recoverable-validation idiom; routing through it satisfies the
    // boundary one level deep.
    auto findings = runOn({
        {"src/mva/solver.cc",
         "std::optional<SolveError>\n"
         "validateResult(double v)\n"
         "{\n"
         "    return std::nullopt;\n"
         "}\n"
         "double trySolve()\n"
         "{\n"
         "    validateResult(1.0);\n"
         "    return 1.0;\n"
         "}\n"},
    });
    EXPECT_TRUE(findings.empty());
}

TEST(NumericGuardCoverage, UnguardedBoundaryFires)
{
    auto findings = runOn({
        {"src/mva/solver.cc",
         "double trySolve() { return compute(); }\n"},
    });
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "numeric-guard-coverage");
}

} // namespace
