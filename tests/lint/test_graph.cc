/**
 * @file
 * Include-graph pass tests: the layers.txt parser, the layering
 * check on the checked-in synthetic fixture trees (forbidden
 * util -> core edge, include cycle), exported-name extraction for
 * the IWYU-lite heuristic, and — the contract that matters day to
 * day — the real repository's src/ running clean against the real
 * tools/lint/layers.txt.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/engine.hh"
#include "lint/include_graph.hh"
#include "lint/lexer.hh"

using namespace snoop::lint;

namespace {

const char *kFixtures = SNOOP_LINT_FIXTURES;
const char *kSourceRoot = SNOOP_SOURCE_ROOT;

std::vector<Finding>
lintTree(const std::string &root)
{
    LintOptions opt;
    opt.root = root;
    opt.paths = {root + "/src"};
    opt.useBaseline = false;
    opt.treePasses = true;
    LintResult r = runLint(opt);
    EXPECT_TRUE(r.errors.empty());
    return r.findings;
}

std::vector<Finding>
byRule(const std::vector<Finding> &all, const std::string &rule)
{
    std::vector<Finding> out;
    for (const Finding &f : all)
        if (f.rule == rule)
            out.push_back(f);
    return out;
}

TEST(Layers, ParseGroupsAndRanks)
{
    Layers layers;
    std::string err;
    ASSERT_TRUE(Layers::parse("# comment\n"
                              "util observe\n"
                              "\n"
                              "mva\n"
                              "core # trailing comment\n",
                              &layers, &err))
        << err;
    ASSERT_EQ(layers.groups.size(), 3u);
    EXPECT_EQ(layers.rank.at("util"), 0u);
    EXPECT_EQ(layers.rank.at("observe"), 0u);
    EXPECT_EQ(layers.rank.at("mva"), 1u);
    EXPECT_EQ(layers.rank.at("core"), 2u);
}

TEST(Layers, RejectsDuplicateAndEmpty)
{
    Layers layers;
    std::string err;
    EXPECT_FALSE(Layers::parse("util\nutil\n", &layers, &err));
    EXPECT_NE(err.find("twice"), std::string::npos);
    EXPECT_FALSE(Layers::parse("# only comments\n", &layers, &err));
}

TEST(Layers, ModuleOf)
{
    EXPECT_EQ(moduleOf("src/mva/solver.cc"), "mva");
    EXPECT_EQ(moduleOf("src/util/logging.hh"), "util");
    EXPECT_EQ(moduleOf("tools/snoop_lint.cc"), "");
    EXPECT_EQ(moduleOf("src/orphan.cc"), "");
}

TEST(LayeringFixtures, ForbiddenUpwardEdgeFires)
{
    auto findings =
        byRule(lintTree(std::string(kFixtures) + "/tree_badedge"),
               "layering");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/util/climber.cc");
    EXPECT_EQ(findings[0].line, 4u);
    EXPECT_NE(findings[0].message.find("core/api.hh"),
              std::string::npos);
}

TEST(LayeringFixtures, IncludeCycleFires)
{
    auto findings =
        byRule(lintTree(std::string(kFixtures) + "/tree_cycle"),
               "layering");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("include cycle"),
              std::string::npos);
    EXPECT_NE(findings[0].message.find("ring_a"), std::string::npos);
    EXPECT_NE(findings[0].message.find("ring_b"), std::string::npos);
}

TEST(LayeringFixtures, SameLayerEdgeIsAllowed)
{
    // In tree_cycle both files sit in layer "util": the only finding
    // is the cycle, not the edge itself.
    auto findings = lintTree(std::string(kFixtures) + "/tree_cycle");
    for (const Finding &f : findings)
        EXPECT_EQ(f.message.find("reaches up"), std::string::npos)
            << f.message;
}

TEST(LayeringFixtures, UnknownModuleIsReported)
{
    Layers layers;
    std::string err;
    ASSERT_TRUE(Layers::parse("util\n", &layers, &err));
    FileSet files;
    files.emplace("src/util/a.cc", lex("#include \"mystery/x.hh\"\n"));
    files.emplace("src/mystery/x.hh", lex("#pragma once\n"));
    auto findings = checkLayering(files, layers);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("mystery"), std::string::npos);
    EXPECT_NE(findings[0].message.find("layers.txt"),
              std::string::npos);
}

TEST(ExportedNames, CapturesDeclarations)
{
    LexedFile h = lex("#pragma once\n"
                      "#define WIDTH_MAX 4\n"
                      "class Gadget;\n"
                      "struct Widget { int n; };\n"
                      "enum class Mode { Fast, Slow };\n"
                      "using Alias = int;\n"
                      "int probe(int x);\n"
                      "constexpr int kLimit = 3;\n");
    auto names = exportedNames(h);
    EXPECT_TRUE(names.count("WIDTH_MAX"));
    EXPECT_TRUE(names.count("Gadget"));
    EXPECT_TRUE(names.count("Widget"));
    EXPECT_TRUE(names.count("Mode"));
    EXPECT_TRUE(names.count("Fast"));
    EXPECT_TRUE(names.count("Slow"));
    EXPECT_TRUE(names.count("Alias"));
    EXPECT_TRUE(names.count("probe"));
    EXPECT_TRUE(names.count("kLimit"));
    // Keywords never become exported names.
    EXPECT_FALSE(names.count("class"));
    EXPECT_FALSE(names.count("enum"));
}

TEST(RealTree, SrcIsLayerCleanAgainstDeclaredDag)
{
    // The acceptance contract: the real src/ tree, the real
    // layers.txt, zero layering findings (the util <-> observe cycle
    // is sanctioned by sharing a layer).
    LintOptions opt;
    opt.root = kSourceRoot;
    opt.paths = {std::string(kSourceRoot) + "/src"};
    opt.useBaseline = false;
    opt.treePasses = true;
    LintResult r = runLint(opt);
    EXPECT_TRUE(r.errors.empty());
    for (const Finding &f : byRule(r.findings, "layering"))
        ADD_FAILURE() << f.file << ":" << f.line << ": " << f.message;
}

TEST(RealTree, FullLintRespectsBaseline)
{
    // End-to-end: the shipped configuration (baseline included) must
    // be clean over src/ — same invariant run_lint.sh enforces in CI,
    // checked here so `ctest -R lint/graph` catches it locally too.
    LintOptions opt;
    opt.root = kSourceRoot;
    opt.paths = {std::string(kSourceRoot) + "/src"};
    opt.treePasses = true;
    LintResult r = runLint(opt);
    EXPECT_TRUE(r.errors.empty());
    for (const Finding &f : r.findings)
        ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule
                      << "] " << f.message;
}

} // namespace
