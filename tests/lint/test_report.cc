/**
 * @file
 * Reporting tests: SARIF 2.1.0 serialization against the checked-in
 * golden file (byte-exact — the log must be deterministic or GitHub
 * code-scanning uploads churn), JSON escaping, the baseline
 * suppression file (parse, match, stale detection), and the
 * --list-rules snapshot (tests/lint/list_rules.snapshot must track
 * the rule registry).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/engine.hh"
#include "lint/report.hh"

using namespace snoop::lint;

namespace {

const char *kFixtures = SNOOP_LINT_FIXTURES;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::vector<Finding>
sampleFindings()
{
    return {
        {"src/util/alpha.cc", 12, "no-raw-assert",
         "raw assert() vanishes under NDEBUG; use SNOOP_ASSERT / "
         "SNOOP_REQUIRE instead"},
        {"src/core/beta.hh", 0, "doxygen-file",
         "header lacks a Doxygen '@file' comment block"},
    };
}

TEST(Sarif, MatchesGoldenFile)
{
    std::string expected =
        slurp(std::string(kFixtures) + "/expected.sarif");
    EXPECT_EQ(toSarif(sampleFindings()), expected);
}

TEST(Sarif, StructuralInvariants)
{
    std::string s = toSarif(sampleFindings());
    EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(s.find("\"name\": \"snoop_lint\""), std::string::npos);
    // A whole-file finding (line 0) is clamped to startLine 1, the
    // SARIF minimum.
    EXPECT_NE(s.find("\"startLine\": 1"), std::string::npos);
    // Every registered rule is exported.
    for (const RuleInfo &rule : ruleTable())
        EXPECT_NE(s.find(std::string("\"id\": \"") + rule.id + "\""),
                  std::string::npos)
            << rule.id;
}

TEST(Sarif, SchemaShapeCarriesRequiredKeys)
{
    // The keys GitHub code scanning actually consumes. A rename in
    // the serializer must fail here, not at upload time.
    std::string s = toSarif(sampleFindings());
    for (const char *key :
         {"\"$schema\"", "\"version\"", "\"runs\"", "\"tool\"",
          "\"driver\"", "\"rules\"", "\"results\"", "\"ruleId\"",
          "\"level\"", "\"message\"", "\"locations\"",
          "\"physicalLocation\"", "\"artifactLocation\"", "\"uri\"",
          "\"region\"", "\"startLine\"", "\"shortDescription\"",
          "\"defaultConfiguration\""})
        EXPECT_NE(s.find(key), std::string::npos) << key;
}

TEST(Sarif, RuleIdsAreStable)
{
    // Rule ids are an external contract: baselines, CI annotations,
    // and code-scanning alert history all key on them. Appending new
    // rules is fine; renaming or reordering the existing ones is not.
    const char *kIds[] = {
        "pragma-once",          "doxygen-file",
        "no-using-std",         "format-attr",
        "converged-check",      "no-raw-assert",
        "no-raw-thread",        "no-fatal-in-solver",
        "layering",             "determinism",
        "unused-include",       "fatal-reachability",
        "unchecked-expected",   "guarded-shared-state",
        "numeric-guard-coverage",
        "fp-determinism",       "lockset",
        "expected-flow",        "marker-allowlist",
    };
    const auto &rules = ruleTable();
    ASSERT_EQ(rules.size(), sizeof(kIds) / sizeof(kIds[0]));
    for (size_t i = 0; i < rules.size(); ++i)
        EXPECT_STREQ(rules[i].id, kIds[i]);
}

TEST(Sarif, EscapesJsonMetacharacters)
{
    std::vector<Finding> findings = {
        {"src/x.cc", 1, "no-raw-assert",
         "message with \"quotes\", a \\ backslash,\nand a newline"},
    };
    std::string s = toSarif(findings);
    EXPECT_NE(s.find("\\\"quotes\\\""), std::string::npos);
    EXPECT_NE(s.find("\\\\ backslash"), std::string::npos);
    EXPECT_NE(s.find("\\nand a newline"), std::string::npos);
}

TEST(Sarif, EmptyFindingsIsStillAValidLog)
{
    std::string s = toSarif({});
    EXPECT_NE(s.find("\"results\": [\n      ]"), std::string::npos);
}

TEST(Baseline, ParseMatchAndStale)
{
    Baseline b = Baseline::parse(
        "# comment line\n"
        "\n"
        "src/util/alpha.cc:no-raw-assert   # legacy assert, issue #7\n"
        "src/core/gone.cc:determinism      # fixed long ago\n");
    EXPECT_TRUE(b.errors().empty());
    EXPECT_EQ(b.size(), 2u);

    size_t suppressed = 0;
    auto kept = applyBaseline(sampleFindings(), b, &suppressed);
    EXPECT_EQ(suppressed, 1u);
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_EQ(kept[0].rule, "doxygen-file");

    auto stale = b.staleEntries();
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_EQ(stale[0], "src/core/gone.cc:determinism");
}

TEST(Baseline, MalformedLinesAreErrorsNotSilence)
{
    Baseline b = Baseline::parse("no-colon-here\n");
    ASSERT_EQ(b.errors().size(), 1u);
    EXPECT_NE(b.errors()[0].find("expected"), std::string::npos);
    EXPECT_EQ(b.size(), 0u);
}

TEST(Baseline, MissingFileIsEmpty)
{
    Baseline b = Baseline::load("/nonexistent/baseline.txt");
    EXPECT_EQ(b.size(), 0u);
    EXPECT_TRUE(b.errors().empty());
}

TEST(ChangedOnly, ToleratesDeletedAndRenamedFiles)
{
    // Regression: `git diff --name-only <ref>` used to feed deleted
    // (and renamed-away) paths into the target list; the diff is now
    // taken with --diff-filter=d and existing files only.
    namespace fs = std::filesystem;
    if (std::system("git --version > /dev/null 2>&1") != 0)
        GTEST_SKIP() << "git not available";

    fs::path dir =
        fs::temp_directory_path() / "snoop_lint_changed_only";
    fs::remove_all(dir);
    fs::create_directories(dir / "src");
    auto sh = [&](const std::string &cmd) {
        return std::system(("cd \"" + dir.string() + "\" && " + cmd +
                            " > /dev/null 2>&1")
                               .c_str());
    };
    auto put = [&](const char *rel, const char *body) {
        std::ofstream out(dir / rel);
        out << body;
    };

    ASSERT_EQ(sh("git init -q"), 0);
    sh("git config user.email lint@test && git config user.name lint");
    put("src/keep.cc", "void keepCheck(int n) { assert(n > 0); }\n");
    put("src/doomed.cc", "void gone(int n) { assert(n > 0); }\n");
    put("src/old_name.cc", "void moved(int n) { assert(n > 0); }\n");
    ASSERT_EQ(sh("git add -A && git commit -qm seed"), 0);

    put("src/keep.cc", "void keepCheck(int n) { assert(n >= 0); }\n");
    fs::rename(dir / "src/old_name.cc", dir / "src/new_name.cc");
    fs::remove(dir / "src/doomed.cc");
    ASSERT_EQ(sh("git add -A"), 0);

    LintOptions opt;
    opt.root = dir.string();
    opt.changedOnly = true;
    opt.changedRef = "HEAD";
    opt.useBaseline = false;

    LintResult r = runLint(opt);
    EXPECT_TRUE(r.errors.empty()) << (r.errors.empty() ? ""
                                                       : r.errors[0]);
    // The surviving changed files are linted; the deleted file and
    // the rename's old path are not (and produce no errors).
    std::vector<std::string> files;
    for (const Finding &f : r.findings)
        files.push_back(f.file + ":" + f.rule);
    std::vector<std::string> want = {"src/keep.cc:no-raw-assert",
                                     "src/new_name.cc:no-raw-assert"};
    EXPECT_EQ(files, want);

    fs::remove_all(dir);
}

TEST(Allowlist, ParseMatchAndStale)
{
    Allowlist a = Allowlist::parse(
        "# registry of inline waivers\n"
        "\n"
        "src/util/fault.cc:fatal-ok        # handler must not recurse\n"
        "src/core/gone.cc:nonconvergence-ok  # marker removed\n");
    EXPECT_TRUE(a.errors().empty());
    EXPECT_EQ(a.size(), 2u);

    EXPECT_TRUE(a.matches("src/util/fault.cc", "fatal-ok"));
    EXPECT_FALSE(a.matches("src/util/fault.cc", "include-ok"));
    EXPECT_FALSE(a.matches("src/util/other.cc", "fatal-ok"));

    // Only the never-matched entry is stale.
    auto stale = a.staleEntries();
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_EQ(stale[0], "src/core/gone.cc:nonconvergence-ok");
}

TEST(Allowlist, JustificationIsMandatory)
{
    Allowlist a =
        Allowlist::parse("src/util/fault.cc:fatal-ok\n"
                         "src/util/fault.cc:fatal-ok  #\n");
    EXPECT_EQ(a.errors().size(), 2u);
    for (const auto &err : a.errors())
        EXPECT_NE(err.find("justification"), std::string::npos) << err;
    EXPECT_EQ(a.size(), 0u);
}

TEST(Allowlist, MalformedLinesAreErrorsNotSilence)
{
    Allowlist a = Allowlist::parse("no-colon-here  # why\n");
    ASSERT_EQ(a.errors().size(), 1u);
    EXPECT_EQ(a.size(), 0u);
}

TEST(Allowlist, MissingFileIsEmpty)
{
    Allowlist a = Allowlist::load("/nonexistent/allowlist.txt");
    EXPECT_EQ(a.size(), 0u);
    EXPECT_TRUE(a.errors().empty());
}

TEST(ListRules, SnapshotTracksRegistry)
{
    // Must render exactly what `snoop_lint --list-rules` prints
    // (same "%-18s %s" format as the driver).
    std::ostringstream expected;
    for (const RuleInfo &rule : ruleTable()) {
        char buf[256];
        std::snprintf(buf, sizeof(buf), "%-18s %s\n", rule.id,
                      rule.summary);
        expected << buf;
    }
    std::string snapshot = slurp(std::string(kFixtures) +
                                 "/../list_rules.snapshot");
    EXPECT_EQ(snapshot, expected.str())
        << "tests/lint/list_rules.snapshot is out of date; regenerate "
           "with: snoop_lint --list-rules > tests/lint/"
           "list_rules.snapshot";
}

} // namespace
