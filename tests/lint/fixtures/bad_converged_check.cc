// Negative lint fixture: an MVA solve whose result is consumed
// without checking 'converged', without an explicit onNonConvergence
// policy, and without a nonconvergence-ok marker. The
// [converged-check] rule must fire on this file.

#include "mva/solver.hh"

namespace snoop {

double
unguardedSpeedup(const DerivedInputs &inputs, unsigned n)
{
    MvaSolver solver;
    auto r = solver.solve(inputs, n);
    return r.speedup;
}

} // namespace snoop
