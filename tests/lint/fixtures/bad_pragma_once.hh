/**
 * @file
 * Negative lint fixture: a header that forgot '#pragma once'. The
 * [pragma-once] rule must fire on this file; see tools/run_lint.sh.
 */

namespace snoop {

struct DoubleInclusionHazard
{
    int value = 0;
};

} // namespace snoop
