// Clean fixture for the guarded-shared-state pass: g_total carries
// SNOOP_GUARDED_BY(g_mutex) and its accessor locks g_mutex by name,
// so the pass must stay silent.

#include <mutex>

#include "util/annotations.hh"
#include "util/parallel.hh"

namespace snoop {

namespace {

std::mutex g_mutex;
unsigned g_total SNOOP_GUARDED_BY(g_mutex) = 0;

void
addSample(unsigned v)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_total += v;
}

} // namespace

void
accumulate(unsigned n)
{
    parallelFor(n, [](size_t i) { addSample(static_cast<unsigned>(i)); });
}

} // namespace snoop
