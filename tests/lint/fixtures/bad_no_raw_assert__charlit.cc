// Negative fixture: regression for the PR 1 stripStrings bug. The
// char literal '"' toggled that scanner's in_string flag, masking
// everything after it on the line — so the raw assert() below was a
// false NEGATIVE. The token lexer understands char literals, so the
// rule must fire here.
//
// Expected: [no-raw-assert] on the line below.

#include <cassert>

bool
isQuote(char c)
{
    if (c == '"') assert(c != '\0');
    return c == '"';
}
