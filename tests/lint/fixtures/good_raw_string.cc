// Clean fixture: rule text inside raw-string (and ordinary-string)
// literals must never fire a code rule. The old line scanner
// declared raw strings out of scope; the token lexer handles them,
// including multi-line bodies and custom delimiters.

const char *kRuleDoc = R"doc(
    assert(x);              // would be no-raw-assert if it were code
    std::thread worker;     // would be no-raw-thread
    using namespace std;    // would be no-using-std
    std::rand(); time(0);   // would be determinism violations
    auto r = s.solve(n);    // would be converged-check
)doc";

const char *kPlain = "assert(true); std::thread t;";

int
ruleDocLength()
{
    int n = 0;
    for (const char *p = kRuleDoc; *p; ++p)
        ++n;
    for (const char *p = kPlain; *p; ++p)
        ++n;
    return n;
}
