// Negative fixture for the fp-determinism kernel-file checks: the
// "kernel" in the basename opts this file in as a kernel, where
// accumulation order itself is part of the bit-identity contract.

#include <numeric>
#include <unordered_map>
#include <vector>

namespace snoop {

double
foldUnordered(const std::unordered_map<int, double> &weights)
{
    double acc = 0.0;
    for (const auto &kv : weights) {
        acc += kv.second; // must fire: fold order follows hash order
    }
    return acc;
}

double
reduceAll(const std::vector<double> &v)
{
    return std::reduce(v.begin(), v.end(), 0.0); // must fire
}

} // namespace snoop
