// Negative lint fixture: a raw assert() in non-test code, which
// vanishes under NDEBUG and leaves release builds unguarded. The
// [no-raw-assert] rule must fire on this file.

#include <cassert>

namespace snoop {

double
checkedDivide(double num, double den)
{
    assert(den != 0.0);
    return num / den;
}

} // namespace snoop
