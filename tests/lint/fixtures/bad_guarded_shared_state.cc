// Negative fixture for the guarded-shared-state pass: g_hits is
// mutable namespace-scope state, bumpCounter touches it, and
// runSweep launches the parallelFor worker that reaches bumpCounter
// -- all without a SNOOP_GUARDED_BY annotation.

#include "util/parallel.hh"

namespace snoop {

namespace {

unsigned g_hits = 0; // must fire: unannotated worker-reachable state

void
bumpCounter()
{
    ++g_hits;
}

} // namespace

void
runSweep(unsigned n)
{
    parallelFor(n, [](size_t) { bumpCounter(); });
}

} // namespace snoop
