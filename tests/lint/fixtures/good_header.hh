#pragma once

/**
 * @file
 * Positive lint fixture: a header obeying every snoop_lint rule, to
 * guard against rules growing false positives. run_lint.sh requires
 * snoop_lint to report this file clean.
 */

#include "mva/solver.hh"

namespace snoop {

/** Printf-style helper with the format attribute spelled out. */
void logChecked(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** A solve wrapper that honors the convergence contract. */
inline double
guardedSpeedup(const MvaSolver &solver, const DerivedInputs &inputs,
               unsigned n)
{
    auto r = solver.solve(inputs, n);
    if (!r.converged)
        return 0.0;
    return r.speedup;
}

} // namespace snoop
