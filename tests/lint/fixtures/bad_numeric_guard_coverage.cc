// Negative fixture for the numeric-guard-coverage pass: solveModel
// is a solver boundary (a solve* definition in an opted-in fixture)
// that returns raw arithmetic without routing through NumericGuard /
// SNOOP_NUMERIC_CHECK or a same-file validator.

namespace snoop {

double
solveModel(double a, double b)
{
    return a / b; // must fire: unguarded boundary result
}

} // namespace snoop
