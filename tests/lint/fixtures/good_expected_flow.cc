// Clean fixture for the expected-flow pass: every .value() read is
// dominated by an ok() (or operator bool) check on its own path, or
// goes through the safe accessors -- the pass must stay silent.

#include "util/expected.hh"

namespace snoop {

Expected<double>
tryLoad(int key)
{
    if (key < 0)
        return makeError(SolveErrorCode::InvalidArgument, "tryLoad",
                         "negative key");
    return 1.0;
}

double
readGuarded(int key)
{
    auto r = tryLoad(key);
    if (!r.ok())
        return 0.0;
    return r.value(); // the not-ok path returned early
}

double
readBoolTested(int key)
{
    auto r = tryLoad(key);
    if (r)
        return r.value(); // operator bool established ok
    return 0.0;
}

double
readTernary(int key)
{
    auto r = tryLoad(key);
    return r.ok() ? r.value() : 0.0; // same-statement check
}

double
readValueOr(int key)
{
    auto r = tryLoad(key);
    return r.valueOr(0.0); // safe accessor, no check needed
}

} // namespace snoop
