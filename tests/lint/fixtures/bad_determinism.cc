// Negative fixture for the determinism pass: wall-clock and ambient
// randomness outside src/random/ silently break the bit-identical-
// at-any-SNOOP_JOBS contract. The file name opts into the pass
// (fixtures cannot live under src/).
//
// Expected: [determinism] on the seed line below.

#include <cstdlib>

unsigned
sampleSeed()
{
    unsigned seed = std::rand();
    return seed;
}
