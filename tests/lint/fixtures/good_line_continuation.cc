// Clean fixture for the lexer's backslash-newline handling: every
// suspicious token below is dead text reached only through a phase-2
// line continuation. A lexer that stops splicing at the first
// newline leaks the continuation lines back into the code view and
// the rules fire on the leaked text.

#define TRACE_POINT(x) /* no-op */ \
    do {                           \
    } while (0)

// A // comment continued by a backslash stays a comment: \
   assert(leaked); \
   std::thread leaked_thread;

const char *kMultiLine = "line one \
line two with assert(inside_string)";

int
useMacro(int x)
{
    TRACE_POINT(x);
    return x;
}
