// Negative fixture for the IWYU-lite pass: the include below
// resolves (same directory), the header exports names
// (UnusedHelper, UNUSED_HELPER_LIMIT, unusedHelperCapacity), and
// this file references none of them.
//
// Expected: [unused-include] on the include line.

#include "unused_helper.hh"

int
answer()
{
    return 42;
}
