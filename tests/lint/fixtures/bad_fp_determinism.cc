// Negative fixture for the fp-determinism pass: a libm transcendental
// call in bit-identity-critical scope, and an unordered-map iteration
// whose order reaches a serialization call. The basename opts this
// file into the pass scope (fixture runs have no determinism.txt).

#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_map>

namespace snoop {

double
interference(double pPrime, double q)
{
    return 1.0 - std::pow(pPrime, q); // must fire: libm pow
}

void
emitCounts(const std::unordered_map<std::string, double> &counts)
{
    for (const auto &kv : counts) { // must fire: order reaches printf
        std::printf("%s %f\n", kv.first.c_str(), kv.second);
    }
}

} // namespace snoop
