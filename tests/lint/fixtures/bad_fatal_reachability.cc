// Negative fixture for the fatal-reachability pass: tryCompute is a
// try* entry point (the basename opts this file into the entry
// scope) and reaches fatal() through a file-local helper. The
// finding must carry the full witness chain
// tryCompute -> helper -> fatal().

#include "util/logging.hh"

namespace snoop {

namespace {

double
helper(double x)
{
    if (x < 0.0)
        fatal("negative input %g", x); // the sink the chain ends at
    return x;
}

} // namespace

double
tryCompute(double x)
{
    return helper(x) * 2.0; // must fire: entry reaches the sink
}

} // namespace snoop
