#pragma once

/**
 * @file
 * Negative lint fixture: 'using namespace std' at header scope. The
 * [no-using-std] rule must fire on this file.
 */

#include <string>

using namespace std;

namespace snoop {

inline string leakyName() { return "oops"; }

} // namespace snoop
