#pragma once

/** @file Synthetic layering fixture: other half of an include cycle. */

#include "util/ring_a.hh"

struct RingB {
    RingA *peer;
};
