#pragma once

/** @file Synthetic layering fixture: one half of an include cycle. */

#include "util/ring_b.hh"

struct RingA {
    RingB *peer;
};
