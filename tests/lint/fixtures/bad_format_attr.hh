#pragma once

/**
 * @file
 * Negative lint fixture: a printf-style declaration without the
 * format attribute, so mismatched format arguments compile silently.
 * The [format-attr] rule must fire on this file.
 */

namespace snoop {

void logUnchecked(const char *fmt, ...);

} // namespace snoop
