// Negative fixture for the unchecked-expected pass: tryParse returns
// Expected<double>, one caller discards the result outright, another
// reads .value() without an ok()/error() check. The basename opts
// this file into the pass scope.

#include "util/expected.hh"

namespace snoop {

Expected<double>
tryParse(const std::string &text)
{
    if (text.empty())
        return makeError(SolveErrorCode::InvalidArgument, "tryParse",
                         "empty input");
    return 1.0;
}

void
consume(const std::string &text)
{
    tryParse(text); // must fire: Expected silently discarded
}

double
readValue(const std::string &text)
{
    return tryParse(text).value(); // must fire: .value() unchecked
}

} // namespace snoop
