// Negative fixture for R8 (no-fatal-in-solver) covering the CSV
// writer path: result emission runs on library paths (sweep CSVs,
// bench emitters), so a planted fatal() on stream failure must fire
// the rule. The file name prefix opts this fixture into the
// solver-path rule set, the way src/util/csv.* now is.

#include "util/expected.hh"
#include "util/logging.hh"

namespace snoop {

void
writeRow(bool stream_ok, const char *path)
{
    if (!stream_ok)
        fatal("CsvWriter: write to '%s' failed", path); // must fire
}

} // namespace snoop
