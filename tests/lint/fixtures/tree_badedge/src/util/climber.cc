// Synthetic layering fixture: util (layer 1) reaching up into core
// (layer 2) — the forbidden util -> core edge.

#include "core/api.hh"

int
apiVersion(const CoreApi &api)
{
    return api.version;
}
