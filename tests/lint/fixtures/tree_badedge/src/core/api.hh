#pragma once

/** @file Synthetic layering fixture: the top-layer module. */

struct CoreApi {
    int version;
};
