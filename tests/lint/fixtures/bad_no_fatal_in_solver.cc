// Negative fixture for R8 (no-fatal-in-solver): a library solver
// path that exits the process instead of returning a SolveError.
// The file name opts this fixture into the solver-path rule set.

#include "util/expected.hh"
#include "util/logging.hh"

namespace snoop {

double
solveCell(double x)
{
    if (x < 0.0)
        fatal("negative input %g", x); // must fire: library path exit

    // An allowlisted boundary fatal is fine and must NOT fire:
    // snoop-lint: fatal-ok
    if (x > 1e9)
        fatal("input %g out of supported range", x);

    return x * 2.0;
}

} // namespace snoop
