// Clean fixture for the lockset pass: every access to the annotated
// state is under a lock_guard, inside an explicit lock()/unlock()
// pair, or in a helper whose caller-holds contract is documented in
// the comment the pass seeds the entry lockset from.

#include <mutex>

#include "util/annotations.hh"

namespace snoop {

namespace {

std::mutex g_mutex;
unsigned g_samples SNOOP_GUARDED_BY(g_mutex) = 0;

// Caller holds g_mutex.
unsigned
readLocked()
{
    return g_samples; // entry lockset seeded by the comment above
}

} // namespace

void
recordSample(unsigned v)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_samples += v; // guard in scope
}

unsigned
flushSamples()
{
    g_mutex.lock();
    unsigned out = g_samples; // explicit lock held
    g_mutex.unlock();
    return out + readLocked() * 0;
}

} // namespace snoop
