// Clean fixture for the fp-determinism pass: the deterministic
// kernel call, the waived hoisted log2 idiom, ordered-map iteration
// into output, and unordered iteration that never reaches output --
// all of which must stay silent.

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>

namespace snoop {

double mvaExp2(double x);

double
interference(double log2PPrime, double q)
{
    return 1.0 - mvaExp2(q * log2PPrime); // deterministic kernel
}

double
hoist(double pPrime)
{
    // snoop-lint: fp-ok
    return std::log2(pPrime); // waived: the documented hoist idiom
}

void
emitOrdered(const std::map<std::string, double> &counts)
{
    for (const auto &kv : counts) // std::map: deterministic order
        std::printf("%s %f\n", kv.first.c_str(), kv.second);
}

double
sumUnordered(const std::unordered_map<std::string, double> &counts)
{
    double total = 0.0;
    for (const auto &kv : counts)
        total += kv.second; // no output on any path from the loop
    return total;
}

} // namespace snoop
