// Clean fixture for the unchecked-expected pass: every Expected
// result below is checked or consumed before use, so the pass must
// stay silent.

#include "util/expected.hh"

namespace snoop {

Expected<double>
tryParse(const std::string &text)
{
    if (text.empty())
        return makeError(SolveErrorCode::InvalidArgument, "tryParse",
                         "empty input");
    return 1.0;
}

double
readChecked(const std::string &text)
{
    auto r = tryParse(text);
    if (!r)
        return 0.0;
    return r.value();
}

double
readOr(const std::string &text)
{
    return tryParse(text).valueOr(0.0);
}

Expected<double>
forward(const std::string &text)
{
    return tryParse(text);
}

} // namespace snoop
