#pragma once

/**
 * @file
 * Support header for the unused-include fixture: it exports names
 * (a type, a macro, a function) that bad_unused_include.cc never
 * references, so the IWYU-lite pass must flag the include. Not a
 * bad_* fixture itself — run_lint.sh skips it.
 */

#define UNUSED_HELPER_LIMIT 8

struct UnusedHelper {
    int capacity;
};

int unusedHelperCapacity(const UnusedHelper &h);
