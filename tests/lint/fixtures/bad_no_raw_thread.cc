// Negative fixture: raw std::thread construction outside
// src/util/parallel.cc must trip the no-raw-thread rule. The
// qualified static below must NOT trip it.
#include <thread>

unsigned
okQualifiedUse()
{
    return std::thread::hardware_concurrency();
}

void
badRawThread()
{
    std::thread t([] {});
    t.join();
}
