// Negative fixture for the expected-flow pass: tryLoad's result is
// read via .value() on one path that never checked it, and on the
// branch where ok() was established to be false -- the two
// path-sensitive cases the flow-insensitive unchecked-expected pass
// cannot see (each function also checks on SOME path).

#include "util/expected.hh"

namespace snoop {

Expected<double>
tryLoad(int key)
{
    if (key < 0)
        return makeError(SolveErrorCode::InvalidArgument, "tryLoad",
                         "negative key");
    return 1.0;
}

double
readMixed(int key, bool fast)
{
    auto r = tryLoad(key);
    if (fast)
        return r.value(); // must fire: unchecked on this path
    if (!r.ok())
        return 0.0;
    return r.value(); // checked on this path: silent
}

double
readErrBranch(int key)
{
    auto r = tryLoad(key);
    if (r.ok())
        return r.value(); // checked: silent
    return r.value(); // must fire: reads the not-ok branch
}

} // namespace snoop
