// Negative fixture for the marker-allowlist rule: an inline waiver
// with no registration (the fixture root has no allowlist.txt at
// all, so any inline waiver in scope fires).

namespace snoop {

// snoop-lint: fatal-ok
inline int
answer()
{
    return 42;
}

} // namespace snoop
