#pragma once

// Negative lint fixture: a header with no Doxygen file-level block.
// The [doxygen-file] rule must fire on this file.

namespace snoop {

struct Undocumented
{
    int value = 0;
};

} // namespace snoop
