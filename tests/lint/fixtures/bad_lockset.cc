// Negative fixture for the lockset pass: g_samples carries
// SNOOP_GUARDED_BY(g_mutex), recordSample writes it with no lock on
// any path, and flushSamples locks on only one branch of an if, so
// the other path reaches the access with an empty lockset.

#include <mutex>

#include "util/annotations.hh"

namespace snoop {

namespace {

std::mutex g_mutex;
unsigned g_samples SNOOP_GUARDED_BY(g_mutex) = 0;

} // namespace

void
recordSample(unsigned v)
{
    g_samples += v; // must fire: no path holds g_mutex
}

unsigned
flushSamples(bool fast)
{
    if (!fast) {
        g_mutex.lock();
    }
    unsigned out = g_samples; // must fire: the fast path skipped it
    if (!fast) {
        g_mutex.unlock();
    }
    return out;
}

} // namespace snoop
