/**
 * @file
 * Golden-dump tests for the statement-level CFG builder
 * (tools/lint/cfg.{hh,cc}): if/else, loops with break/continue,
 * switch fallthrough, early return, short-circuit lowering,
 * range-for headers, and the degraded single-block fallback. The
 * dump format (dumpCfg) is a contract — the flow passes' witness
 * paths and these goldens both read block ids and statement lines
 * from it, so a builder change that reshapes a graph must show up
 * here as a diff, not as silent pass drift.
 */

#include <gtest/gtest.h>

#include <string>

#include "lint/cfg.hh"
#include "lint/lexer.hh"
#include "lint/parser.hh"

using namespace snoop::lint;

namespace {

/** Build the CFG of the only function in @p src and dump it. */
std::string
dumpOf(const std::string &src, Cfg *out = nullptr)
{
    LexedFile lf = lex(src);
    ParsedFile pf = parseFile(lf);
    if (pf.functions.size() != 1)
        return "no function parsed";
    Cfg cfg = buildCfg(lf, pf.functions[0]);
    if (out)
        *out = cfg;
    return dumpCfg(cfg);
}

TEST(Cfg, IfElseJoinsAndScopeEnds)
{
    EXPECT_EQ(dumpOf("int f(int a)\n"
                     "{\n"
                     "    if (a > 0) {\n"
                     "        a = 1;\n"
                     "    } else {\n"
                     "        a = 2;\n"
                     "    }\n"
                     "    return a;\n"
                     "}\n"),
              "entry=B0 exit=B1\n"
              "B0: S@3 ?[L3] T->B2 F->B4\n"
              "B1:\n"
              "B2: S@4 E@3 ->B3\n"
              "B3: R@8 ->B1\n"
              "B4: S@6 E@5 ->B3\n");
}

TEST(Cfg, WhileWithBreakAndContinue)
{
    // break edges to the block after the loop (B4), continue back to
    // the header (B2); the body's ScopeEnd also re-enters the header.
    EXPECT_EQ(dumpOf("int f(int n)\n"
                     "{\n"
                     "    int s = 0;\n"
                     "    while (n > 0) {\n"
                     "        if (n == 3)\n"
                     "            break;\n"
                     "        if (n == 4)\n"
                     "            continue;\n"
                     "        s += n;\n"
                     "        n--;\n"
                     "    }\n"
                     "    return s;\n"
                     "}\n"),
              "entry=B0 exit=B1\n"
              "B0: S@3 ->B2\n"
              "B1:\n"
              "B2: S@4 ?[L4] T->B3 F->B4\n"
              "B3: S@5 ?[L5] T->B5 F->B6\n"
              "B4: R@12 ->B1\n"
              "B5: B@6 ->B4\n"
              "B6: S@7 ?[L7] T->B7 F->B8\n"
              "B7: C@8 ->B2\n"
              "B8: S@9 S@10 E@4 ->B2\n");
}

TEST(Cfg, SwitchFallthroughAndDefault)
{
    // The selector block fans out to every case entry; case 1 falls
    // through into case 2 (B4 -> B5); breaks edge past the switch.
    EXPECT_EQ(dumpOf("int f(int c)\n"
                     "{\n"
                     "    int r = 0;\n"
                     "    switch (c) {\n"
                     "    case 0:\n"
                     "        r = 1;\n"
                     "        break;\n"
                     "    case 1:\n"
                     "        r = 2;\n"
                     "        // fallthrough\n"
                     "    case 2:\n"
                     "        r += 3;\n"
                     "        break;\n"
                     "    default:\n"
                     "        r = 9;\n"
                     "    }\n"
                     "    return r;\n"
                     "}\n"),
              "entry=B0 exit=B1\n"
              "B0: S@3 S@4 ->B3 ->B4 ->B5 ->B6\n"
              "B1:\n"
              "B2: R@17 ->B1\n"
              "B3: S@6 B@7 ->B2\n"
              "B4: S@9 ->B5\n"
              "B5: S@12 B@13 ->B2\n"
              "B6: S@15 ->B2\n");
}

TEST(Cfg, EarlyReturnEdgesToExit)
{
    EXPECT_EQ(dumpOf("int f(int a)\n"
                     "{\n"
                     "    if (a < 0)\n"
                     "        return -1;\n"
                     "    return a;\n"
                     "}\n"),
              "entry=B0 exit=B1\n"
              "B0: S@3 ?[L3] T->B2 F->B3\n"
              "B1:\n"
              "B2: R@4 ->B1\n"
              "B3: R@5 ->B1\n");
}

TEST(Cfg, ShortCircuitAndLowersToCondChain)
{
    // `a > 0 && b > 0` becomes two atomic-condition blocks: the first
    // tests `a > 0` (False short-circuits to the else path B3), the
    // second (B4) tests `b > 0`.
    EXPECT_EQ(dumpOf("int f(int a, int b)\n"
                     "{\n"
                     "    if (a > 0 && b > 0)\n"
                     "        return 1;\n"
                     "    return 0;\n"
                     "}\n"),
              "entry=B0 exit=B1\n"
              "B0: S@3 ?[L3] T->B4 F->B3\n"
              "B1:\n"
              "B2: R@4 ->B1\n"
              "B3: R@5 ->B1\n"
              "B4: S@3 ?[L3] T->B2 F->B3\n");
}

TEST(Cfg, RangeForHeaderKeepsItsKind)
{
    Cfg cfg;
    EXPECT_EQ(dumpOf("int f(const std::vector<int> &v)\n"
                     "{\n"
                     "    int s = 0;\n"
                     "    for (const auto &x : v)\n"
                     "        s += x;\n"
                     "    return s;\n"
                     "}\n",
                     &cfg),
              "entry=B0 exit=B1\n"
              "B0: S@3 ->B3\n"
              "B1:\n"
              "B2: R@6 ->B1\n"
              "B3: F@4 ->B4 ->B2\n"
              "B4: S@5 ->B3\n");
    // The header statement is findable by kind, not just by letter.
    bool sawRangeFor = false;
    for (const CfgBlock &b : cfg.blocks)
        for (const CfgStmt &s : b.stmts)
            sawRangeFor = sawRangeFor || s.kind == StmtKind::RangeFor;
    EXPECT_TRUE(sawRangeFor);
}

TEST(Cfg, GotoDegradesToSingleBlock)
{
    Cfg cfg;
    std::string dump = dumpOf("int f(int a)\n"
                              "{\n"
                              "    if (a)\n"
                              "        goto done;\n"
                              "    a = 1;\n"
                              "done:\n"
                              "    return a;\n"
                              "}\n",
                              &cfg);
    EXPECT_TRUE(cfg.degraded);
    EXPECT_NE(dump.find("degraded"), std::string::npos);
    // One linear block plus the exit; no invented control flow.
    EXPECT_EQ(cfg.blocks.size(), 2u);
}

TEST(Cfg, ReachableAndPathHelpers)
{
    Cfg cfg;
    dumpOf("int f(int a)\n"
           "{\n"
           "    if (a < 0)\n"
           "        return -1;\n"
           "    return a;\n"
           "}\n",
           &cfg);
    // Every block survives pruning, so all are reachable.
    EXPECT_EQ(reachableBlocks(cfg).size(), cfg.blocks.size());
    // The early-return block (B2) is reached via the entry.
    std::vector<size_t> path = pathToBlock(cfg, 2);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], cfg.entry);
    EXPECT_EQ(path[1], 2u);
}

} // namespace
