/**
 * @file
 * Fixture-suite diff test for the per-file rules: every fixture in
 * tests/lint/fixtures/ must produce exactly the findings listed in
 * kExpected — rule AND line — when run through the token-based
 * engine. This is the proof that R1-R8 reproduce the line scanner's
 * behavior (same fixtures, same lines) and that the lexer closes its
 * known false-negative holes (char literals, raw strings). Also
 * covers the determinism pass scoping and markers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/engine.hh"

using namespace snoop::lint;

namespace {

namespace fs = std::filesystem;

const char *kFixtures = SNOOP_LINT_FIXTURES;

/** (fixture basename, rule, line) */
struct Expected {
    const char *file;
    const char *rule;
    size_t line;
};

// One row per finding the suite must produce; a fixture absent here
// must lint clean. Lines are load-bearing: a rule that fires on the
// wrong line is a diff failure, not a pass.
const std::vector<Expected> kExpected = {
    {"bad_converged_check.cc", "converged-check", 14},
    {"bad_determinism.cc", "determinism", 13},
    {"bad_expected_flow.cc", "expected-flow", 25},
    {"bad_expected_flow.cc", "expected-flow", 37},
    {"bad_fatal_reachability.cc", "fatal-reachability", 24},
    {"bad_fp_determinism.cc", "fp-determinism", 16},
    {"bad_fp_determinism.cc", "fp-determinism", 22},
    {"bad_fp_determinism__kernel.cc", "fp-determinism", 16},
    {"bad_fp_determinism__kernel.cc", "fp-determinism", 24},
    {"bad_guarded_shared_state.cc", "guarded-shared-state", 12},
    {"bad_lockset.cc", "lockset", 22},
    {"bad_lockset.cc", "lockset", 31},
    {"bad_marker_allowlist.cc", "marker-allowlist", 7},
    {"bad_numeric_guard_coverage.cc", "numeric-guard-coverage", 9},
    {"bad_unchecked_expected.cc", "unchecked-expected", 22},
    {"bad_unchecked_expected.cc", "unchecked-expected", 28},
    {"bad_doxygen_file.hh", "doxygen-file", 0},
    {"bad_format_attr.hh", "format-attr", 12},
    {"bad_no_fatal_in_solver.cc", "no-fatal-in-solver", 14},
    {"bad_no_fatal_in_solver__csv.cc", "no-fatal-in-solver", 16},
    {"bad_no_raw_assert.cc", "no-raw-assert", 12},
    {"bad_no_raw_assert__charlit.cc", "no-raw-assert", 14},
    {"bad_no_raw_thread.cc", "no-raw-thread", 15},
    {"bad_no_using_std.hh", "no-using-std", 11},
    {"bad_pragma_once.hh", "pragma-once", 1},
    {"bad_unused_include.cc", "unused-include", 8},
};

std::vector<Finding>
lintOne(const fs::path &file)
{
    LintOptions opt;
    opt.root = kFixtures;
    opt.paths = {file.string()};
    opt.useBaseline = false;
    opt.treePasses = false;
    LintResult r = runLint(opt);
    EXPECT_TRUE(r.errors.empty());
    return r.findings;
}

TEST(RuleFixtures, SuiteDiff)
{
    // Gather actual findings over every top-level fixture file.
    std::vector<std::string> actual;
    for (const auto &entry : fs::directory_iterator(kFixtures)) {
        if (!entry.is_regular_file())
            continue;
        auto ext = entry.path().extension();
        if (ext != ".hh" && ext != ".cc")
            continue;
        for (const Finding &f : lintOne(entry.path())) {
            actual.push_back(entry.path().filename().string() + ":" +
                             f.rule + ":" + std::to_string(f.line));
        }
    }
    std::sort(actual.begin(), actual.end());

    std::vector<std::string> expected;
    for (const Expected &e : kExpected)
        expected.push_back(std::string(e.file) + ":" + e.rule + ":" +
                           std::to_string(e.line));
    std::sort(expected.begin(), expected.end());

    EXPECT_EQ(actual, expected);
}

TEST(RuleFixtures, GoodFixturesAreClean)
{
    for (const auto &entry : fs::directory_iterator(kFixtures)) {
        if (!entry.is_regular_file())
            continue;
        std::string name = entry.path().filename().string();
        if (name.rfind("good_", 0) != 0)
            continue;
        EXPECT_TRUE(lintOne(entry.path()).empty())
            << name << " must stay clean";
    }
}

TEST(Determinism, MarkerSuppresses)
{
    fs::path tmp = fs::temp_directory_path() / "bad_determinism_ok.cc";
    {
        std::ofstream out(tmp);
        out << "// snoop-lint: determinism-ok (seeding the REPL)\n"
            << "unsigned f() { return std::rand(); }\n";
    }
    // The bad_determinism* name opts into the pass; the marker wins.
    EXPECT_TRUE(lintOne(tmp).empty());
    fs::remove(tmp);
}

TEST(Determinism, OutsideSrcIsOutOfScope)
{
    fs::path tmp = fs::temp_directory_path() / "plain_tool.cc";
    {
        std::ofstream out(tmp);
        out << "unsigned f() { return std::rand(); }\n";
    }
    // Not under src/, not named bad_determinism*: pass does not run.
    EXPECT_TRUE(lintOne(tmp).empty());
    fs::remove(tmp);
}

class UnusedInclude : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() / "snoop_lint_iwyu_test";
        fs::create_directories(dir_);
        std::ofstream out(dir_ / "helper.hh");
        out << "#pragma once\n"
            << "/** @file helper */\n"
            << "#define HELPER_LIMIT 8\n"
            << "struct Helper { int n; };\n";
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    fs::path
    write(const char *name, const std::string &body)
    {
        fs::path p = dir_ / name;
        std::ofstream out(p);
        out << body;
        return p;
    }

    fs::path dir_;
};

TEST_F(UnusedInclude, MarkerSuppresses)
{
    fs::path f = write("marker.cc",
                       "#include \"helper.hh\" "
                       "// snoop-lint: include-ok (side effect)\n"
                       "int g() { return 0; }\n");
    EXPECT_TRUE(lintOne(f).empty());
}

TEST_F(UnusedInclude, MacroUseCounts)
{
    fs::path f = write("macro.cc",
                       "#include \"helper.hh\"\n"
                       "int g() { return HELPER_LIMIT; }\n");
    EXPECT_TRUE(lintOne(f).empty());
}

TEST_F(UnusedInclude, UnusedFires)
{
    fs::path f = write("unused.cc",
                       "#include \"helper.hh\"\n"
                       "int g() { return 0; }\n");
    auto findings = lintOne(f);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unused-include");
    EXPECT_EQ(findings[0].line, 1u);
}

TEST_F(UnusedInclude, OwnHeaderIsNeverUnused)
{
    write("self.hh", "#pragma once\n/** @file self */\n"
                     "struct Self { int n; };\n");
    fs::path f = write("self.cc",
                       "#include \"self.hh\"\n"
                       "int g() { return 1; }\n");
    EXPECT_TRUE(lintOne(f).empty());
}

} // namespace
