/**
 * @file
 * Unit tests for the snoop_analyze lexer (tools/lint/lexer.hh):
 * comments, string/char literals, raw strings, digit separators,
 * include extraction, and the stripped code view the convention
 * rules run over.
 */

#include <gtest/gtest.h>

#include "lint/lexer.hh"

using namespace snoop::lint;

namespace {

std::vector<std::string>
identifiers(const LexedFile &lx)
{
    std::vector<std::string> ids;
    for (const Token &t : lx.tokens)
        if (t.kind == TokenKind::Identifier)
            ids.push_back(t.text);
    return ids;
}

TEST(Lexer, LineCommentsAreBlankInCodeView)
{
    LexedFile lx = lex("int a; // assert(x)\n");
    ASSERT_EQ(lx.code.size(), 1u);
    EXPECT_EQ(lx.code[0], "int a; ");
    EXPECT_EQ(lx.lines[0], "int a; // assert(x)");
}

TEST(Lexer, BlockCommentSpansLines)
{
    LexedFile lx = lex("int a; /* assert(\n"
                       "still comment\n"
                       "*/ int b;\n");
    ASSERT_EQ(lx.code.size(), 3u);
    EXPECT_EQ(lx.code[0], "int a;  ");
    EXPECT_EQ(lx.code[1], "");
    EXPECT_EQ(lx.code[2], " int b;");
    // b lands on line 3 in the token stream.
    const Token &b = lx.tokens.back();
    EXPECT_EQ(b.text, ";");
    bool saw_b = false;
    for (const Token &t : lx.tokens)
        if (t.kind == TokenKind::Identifier && t.text == "b") {
            saw_b = true;
            EXPECT_EQ(t.line, 3u);
        }
    EXPECT_TRUE(saw_b);
}

TEST(Lexer, BlockCommentKeepsWordBoundary)
{
    // `a/*x*/b` must not fuse into identifier `ab` in the code view.
    LexedFile lx = lex("int a/*x*/b;\n");
    EXPECT_EQ(lx.code[0], "int a b;");
}

TEST(Lexer, StringContentsAreDropped)
{
    LexedFile lx = lex("log(\"assert(failed)\");\n");
    EXPECT_EQ(lx.code[0], "log(\"\");");
    ASSERT_GE(lx.tokens.size(), 2u);
    bool found = false;
    for (const Token &t : lx.tokens)
        if (t.kind == TokenKind::String) {
            EXPECT_EQ(t.text, "assert(failed)");
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(Lexer, EscapedQuoteStaysInsideString)
{
    LexedFile lx = lex("f(\"a\\\"b\"); assert(x);\n");
    EXPECT_EQ(lx.code[0], "f(\"\"); assert(x);");
}

TEST(Lexer, CharLiteralQuoteDoesNotOpenString)
{
    // Regression for the PR 1 stripStrings bug: '"' masked the rest
    // of the line.
    LexedFile lx = lex("if (c == '\"') assert(c);\n");
    EXPECT_EQ(lx.code[0], "if (c == '') assert(c);");
}

TEST(Lexer, EscapedCharLiterals)
{
    LexedFile lx = lex("char a = '\\''; char b = '\\\\'; f();\n");
    EXPECT_EQ(lx.code[0], "char a = ''; char b = ''; f();");
}

TEST(Lexer, DigitSeparatorIsNotACharLiteral)
{
    LexedFile lx = lex("int n = 1'000'000; assert(n);\n");
    EXPECT_EQ(lx.code[0], "int n = 1'000'000; assert(n);");
    bool found = false;
    for (const Token &t : lx.tokens)
        if (t.kind == TokenKind::Number) {
            EXPECT_EQ(t.text, "1'000'000");
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(Lexer, RawStringSingleLine)
{
    LexedFile lx = lex("auto s = R\"(assert(x))\"; g();\n");
    EXPECT_EQ(lx.code[0], "auto s = \"\"; g();");
    bool found = false;
    for (const Token &t : lx.tokens)
        if (t.kind == TokenKind::RawString) {
            EXPECT_EQ(t.text, "assert(x)");
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(Lexer, RawStringMultiLineWithDelimiter)
{
    LexedFile lx = lex("auto s = R\"doc(\n"
                       "assert(x); )\" not the end\n"
                       ")doc\"; h();\n");
    ASSERT_EQ(lx.code.size(), 3u);
    EXPECT_EQ(lx.code[0], "auto s = \"\"");
    EXPECT_EQ(lx.code[1], "");
    EXPECT_EQ(lx.code[2], "; h();");
    bool saw_h = false;
    for (const Token &t : lx.tokens)
        if (t.kind == TokenKind::Identifier && t.text == "h") {
            saw_h = true;
            EXPECT_EQ(t.line, 3u);
        }
    EXPECT_TRUE(saw_h);
}

TEST(Lexer, EncodingPrefixedStrings)
{
    LexedFile lx = lex("auto a = u8\"x\"; auto b = L\"y\"; k();\n");
    EXPECT_EQ(lx.code[0], "auto a = \"\"; auto b = \"\"; k();");
}

TEST(Lexer, IncludeExtraction)
{
    LexedFile lx = lex("#include \"util/logging.hh\"\n"
                       "#include <vector>\n"
                       "  #  include \"mva/solver.hh\"\n");
    ASSERT_EQ(lx.includes.size(), 3u);
    EXPECT_EQ(lx.includes[0].path, "util/logging.hh");
    EXPECT_FALSE(lx.includes[0].system);
    EXPECT_EQ(lx.includes[0].line, 1u);
    EXPECT_EQ(lx.includes[1].path, "vector");
    EXPECT_TRUE(lx.includes[1].system);
    EXPECT_EQ(lx.includes[2].path, "mva/solver.hh");
    EXPECT_EQ(lx.includes[2].line, 3u);
}

TEST(Lexer, IncludeInsideCommentOrRawStringIsIgnored)
{
    LexedFile lx = lex("// #include \"util/a.hh\"\n"
                       "/* #include \"util/b.hh\" */\n"
                       "auto s = R\"(\n"
                       "#include \"util/c.hh\"\n"
                       ")\";\n"
                       "#include \"util/real.hh\"\n");
    ASSERT_EQ(lx.includes.size(), 1u);
    EXPECT_EQ(lx.includes[0].path, "util/real.hh");
    EXPECT_EQ(lx.includes[0].line, 6u);
}

TEST(Lexer, PragmaOnceSurvivesInRawAndCodeLines)
{
    LexedFile lx = lex("#pragma once\n");
    ASSERT_EQ(lx.lines.size(), 1u);
    EXPECT_EQ(lx.lines[0], "#pragma once");
    EXPECT_EQ(lx.code[0], "#pragma once");
}

TEST(Lexer, IdentifierLineNumbers)
{
    LexedFile lx = lex("alpha\nbeta\n\ngamma\n");
    auto ids = identifiers(lx);
    ASSERT_EQ(ids.size(), 3u);
    EXPECT_EQ(lx.tokens[0].line, 1u);
    EXPECT_EQ(lx.tokens[1].line, 2u);
    EXPECT_EQ(lx.tokens[2].line, 4u);
}

TEST(Lexer, LineCommentHonorsBackslashContinuation)
{
    // Phase-2 line splicing: a // comment whose line ends in a
    // backslash swallows the next physical line too. Before the fix
    // a multi-line macro ending in a comment leaked its continuation
    // lines back into the code view.
    LexedFile lx = lex("// comment continues \\\n"
                       "assert(leaked);\n"
                       "int after;\n");
    ASSERT_EQ(lx.code.size(), 3u);
    EXPECT_EQ(lx.code[1], "");
    EXPECT_EQ(lx.code[2], "int after;");
    auto ids = identifiers(lx);
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], "int");
    EXPECT_EQ(ids[1], "after");
    // The line counter stays honest across the splice.
    EXPECT_EQ(lx.tokens.back().line, 3u);
}

TEST(Lexer, StringHonorsBackslashContinuation)
{
    LexedFile lx = lex("const char *s = \"one \\\n"
                       "two\";\n"
                       "int after;\n");
    bool found = false;
    for (const Token &t : lx.tokens)
        if (t.kind == TokenKind::String) {
            found = true;
            // The splice contributes nothing to the value.
            EXPECT_EQ(t.text, "one two");
        }
    EXPECT_TRUE(found);
    EXPECT_EQ(lx.tokens.back().line, 3u);
}

TEST(Lexer, UnterminatedConstructsDoNotLoop)
{
    // Robustness: never hang or crash on malformed input.
    (void)lex("\"unterminated\n");
    (void)lex("'x\n");
    (void)lex("/* never closed\nstill open\n");
    (void)lex("auto s = R\"(never closed\n");
    SUCCEED();
}

} // namespace
