/**
 * @file
 * Pass-level tests for the flow-sensitive analyses
 * (tools/lint/flow.{hh,cc}) over synthetic in-memory FileSets:
 * fp-determinism roster scoping and sanctioned kernels, lockset
 * branch coverage and the caller-holds seeding idiom, expected-flow
 * path sensitivity, and DeterminismRoster parsing. The fixture suite
 * (test_rules.cc) proves end-to-end line numbers; these tests pin
 * the pass logic itself so a regression names the analysis, not
 * just "the suite diff changed".
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/flow.hh"
#include "lint/lexer.hh"

using namespace snoop::lint;

namespace {

namespace fs = std::filesystem;

/** Findings for a single synthetic file under @p roster. */
std::vector<Finding>
runOn(const std::string &path, const std::string &src,
      const DeterminismRoster &roster = {})
{
    FileSet files;
    files.emplace(path, lex(src));
    return runFlowPasses(files, roster);
}

size_t
countRule(const std::vector<Finding> &fs, const std::string &rule)
{
    return static_cast<size_t>(
        std::count_if(fs.begin(), fs.end(), [&](const Finding &f) {
            return f.rule == rule;
        }));
}

TEST(FpDeterminism, RosterModuleScopesThePass)
{
    const std::string src = "double f(double x)\n"
                            "{\n"
                            "    return std::exp(x);\n"
                            "}\n";
    DeterminismRoster roster;
    roster.modules = {"src/mva/"};
    // In a roster module the transcendental fires...
    EXPECT_EQ(countRule(runOn("src/mva/solve.cc", src, roster),
                        "fp-determinism"),
              1u);
    // ...outside it (same content) the pass does not run.
    EXPECT_EQ(countRule(runOn("src/stats/solve.cc", src, roster),
                        "fp-determinism"),
              0u);
}

TEST(FpDeterminism, SanctionedKernelBodyIsExempt)
{
    DeterminismRoster roster;
    roster.modules = {"src/mva/"};
    roster.sanctioned.insert("fastExp");
    // The sanctioned function IS the deterministic replacement; libm
    // inside its own body is the point, not a violation.
    EXPECT_EQ(countRule(runOn("src/mva/kern.cc",
                              "double fastExp(double x)\n"
                              "{\n"
                              "    return std::exp(x);\n"
                              "}\n",
                              roster),
                        "fp-determinism"),
              0u);
}

TEST(FpDeterminism, MarkerWaives)
{
    DeterminismRoster roster;
    roster.modules = {"src/mva/"};
    EXPECT_EQ(countRule(runOn("src/mva/solve.cc",
                              "double f(double x)\n"
                              "{\n"
                              "    // snoop-lint: fp-ok\n"
                              "    return std::exp(x);\n"
                              "}\n",
                              roster),
                        "fp-determinism"),
              0u);
}

TEST(Lockset, OneUnlockedBranchFires)
{
    const std::string src =
        "#include <mutex>\n"
        "std::mutex g_mutex;\n"
        "unsigned g_x SNOOP_GUARDED_BY(g_mutex) = 0;\n"
        "unsigned\n"
        "f(bool fast)\n"
        "{\n"
        "    if (!fast)\n"
        "        g_mutex.lock();\n"
        "    unsigned v = g_x;\n"
        "    if (!fast)\n"
        "        g_mutex.unlock();\n"
        "    return v;\n"
        "}\n";
    std::vector<Finding> fs = runOn("src/core/state.cc", src);
    ASSERT_EQ(countRule(fs, "lockset"), 1u);
    EXPECT_EQ(fs[0].line, 9u);
    // The witness path is part of the message contract.
    EXPECT_NE(fs[0].message.find("path "), std::string::npos);
}

TEST(Lockset, GuardOnEveryPathIsSilent)
{
    EXPECT_EQ(
        countRule(runOn("src/core/state.cc",
                        "#include <mutex>\n"
                        "std::mutex g_mutex;\n"
                        "unsigned g_x SNOOP_GUARDED_BY(g_mutex) = 0;\n"
                        "unsigned\n"
                        "f()\n"
                        "{\n"
                        "    std::lock_guard<std::mutex> lk(g_mutex);\n"
                        "    return g_x;\n"
                        "}\n"),
                  "lockset"),
        0u);
}

TEST(Lockset, CallerHoldsCommentSeedsTheEntryLockset)
{
    EXPECT_EQ(
        countRule(runOn("src/core/state.cc",
                        "#include <mutex>\n"
                        "std::mutex g_mutex;\n"
                        "unsigned g_x SNOOP_GUARDED_BY(g_mutex) = 0;\n"
                        "// Caller holds g_mutex.\n"
                        "unsigned\n"
                        "f()\n"
                        "{\n"
                        "    return g_x;\n"
                        "}\n"),
                  "lockset"),
        0u);
}

TEST(Lockset, TrailingCommentDoesNotSeed)
{
    // The "hold" idiom only counts on whole-line comments; a trailing
    // remark on a nearby statement must not grant the lock.
    EXPECT_EQ(
        countRule(runOn("src/core/state.cc",
                        "#include <mutex>\n"
                        "std::mutex g_mutex;\n"
                        "unsigned g_x SNOOP_GUARDED_BY(g_mutex) = 0;\n"
                        "int g_y = 0; // nobody holds g_mutex here\n"
                        "unsigned\n"
                        "f()\n"
                        "{\n"
                        "    return g_x;\n"
                        "}\n"),
                  "lockset"),
        1u);
}

TEST(ExpectedFlow, CheckedOnOneBranchReadOnAnother)
{
    const std::string src =
        "#include \"util/expected.hh\"\n"
        "Expected<int> tryGet(int k);\n"
        "int\n"
        "f(int k, bool fast)\n"
        "{\n"
        "    auto r = tryGet(k);\n"
        "    if (fast)\n"
        "        return r.value();\n"
        "    if (!r.ok())\n"
        "        return 0;\n"
        "    return r.value();\n"
        "}\n";
    std::vector<Finding> fs = runOn("src/core/use.cc", src);
    ASSERT_EQ(countRule(fs, "expected-flow"), 1u);
    EXPECT_EQ(fs[0].line, 8u);
}

TEST(ExpectedFlow, CheckedEveryPathIsSilent)
{
    EXPECT_EQ(countRule(runOn("src/core/use.cc",
                              "#include \"util/expected.hh\"\n"
                              "Expected<int> tryGet(int k);\n"
                              "int\n"
                              "f(int k)\n"
                              "{\n"
                              "    auto r = tryGet(k);\n"
                              "    if (!r.ok())\n"
                              "        return 0;\n"
                              "    return r.value();\n"
                              "}\n"),
                        "expected-flow"),
              0u);
}

TEST(ExpectedFlow, ErrBranchReadFires)
{
    std::vector<Finding> fs =
        runOn("src/core/use.cc",
              "#include \"util/expected.hh\"\n"
              "Expected<int> tryGet(int k);\n"
              "int\n"
              "f(int k)\n"
              "{\n"
              "    auto r = tryGet(k);\n"
              "    if (r.ok())\n"
              "        return r.value();\n"
              "    return r.value();\n"
              "}\n");
    ASSERT_EQ(countRule(fs, "expected-flow"), 1u);
    EXPECT_EQ(fs[0].line, 9u);
}

TEST(Roster, LoadParsesDirectives)
{
    fs::path tmp = fs::temp_directory_path() / "determinism_test.txt";
    {
        std::ofstream out(tmp);
        out << "# roster\n"
            << "module src/mva/\n"
            << "kernel src/mva/kernel.hh\n"
            << "sanctioned mvaExp2\n";
    }
    std::string err;
    DeterminismRoster r = DeterminismRoster::load(tmp.string(), &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_TRUE(r.memberFile("src/mva/solve.cc"));
    EXPECT_TRUE(r.memberFile("src/mva/kernel.hh"));
    EXPECT_FALSE(r.memberFile("src/stats/solve.cc"));
    EXPECT_TRUE(r.kernelFile("src/mva/kernel.hh"));
    EXPECT_FALSE(r.kernelFile("src/mva/solve.cc"));
    EXPECT_EQ(r.sanctioned.count("mvaExp2"), 1u);
    fs::remove(tmp);
}

TEST(Roster, MalformedDirectiveIsAnError)
{
    fs::path tmp = fs::temp_directory_path() / "determinism_bad.txt";
    {
        std::ofstream out(tmp);
        out << "frobnicate src/mva/\n";
    }
    std::string err;
    DeterminismRoster::load(tmp.string(), &err);
    EXPECT_FALSE(err.empty());
    fs::remove(tmp);
}

TEST(Roster, MissingFileIsAnEmptyRosterNotAnError)
{
    std::string err;
    DeterminismRoster r =
        DeterminismRoster::load("/nonexistent/determinism.txt", &err);
    EXPECT_TRUE(err.empty());
    EXPECT_TRUE(r.modules.empty());
    EXPECT_TRUE(r.kernels.empty());
}

} // namespace
