/**
 * Regression test against the paper's published MVA speedups
 * (Table 4.1 a-c). Our reconstruction of the [VeHo86] input
 * derivations (see DESIGN.md) reproduces all 81 values with RMS error
 * ~2.3% and max error ~4.9%; the tolerances here lock that fidelity
 * in so a regression in the workload derivation or the solver shows
 * up immediately.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "mva/solver.hh"

namespace snoop {
namespace {

constexpr unsigned kNs[] = {1, 2, 4, 6, 8, 10, 15, 20, 100};

struct PaperRow
{
    SharingLevel level;
    const char *mods;
    double speedups[9];
};

// Table 4.1(a): Write-Once
const PaperRow kTable41a[] = {
    {SharingLevel::OnePercent, "",
     {0.86, 1.68, 3.17, 4.33, 5.08, 5.49, 5.88, 5.98, 6.07}},
    {SharingLevel::FivePercent, "",
     {0.855, 1.67, 3.12, 4.23, 4.93, 5.30, 5.63, 5.72, 5.79}},
    {SharingLevel::TwentyPercent, "",
     {0.84, 1.61, 2.97, 3.97, 4.55, 4.83, 5.07, 5.12, 5.16}},
};

// Table 4.1(b): Enhancement 1
const PaperRow kTable41b[] = {
    {SharingLevel::OnePercent, "1",
     {0.875, 1.73, 3.37, 4.82, 5.94, 6.59, 7.02, 7.09, 7.04}},
    {SharingLevel::FivePercent, "1",
     {0.87, 1.71, 3.30, 4.65, 5.68, 6.23, 6.59, 6.64, 6.60}},
    {SharingLevel::TwentyPercent, "1",
     {0.85, 1.63, 3.08, 4.22, 5.03, 5.40, 5.63, 5.66, 5.62}},
};

// Table 4.1(c): Enhancements 1 and 4
const PaperRow kTable41c[] = {
    {SharingLevel::OnePercent, "14",
     {0.88, 1.75, 3.40, 4.90, 6.06, 6.83, 7.49, 7.58, 7.56}},
    {SharingLevel::FivePercent, "14",
     {0.88, 1.75, 3.40, 4.87, 6.06, 6.83, 7.46, 7.57, 7.57}},
    {SharingLevel::TwentyPercent, "14",
     {0.88, 1.74, 3.35, 4.75, 5.90, 6.70, 7.47, 7.64, 7.70}},
};

void
checkTable(const PaperRow *rows, size_t num_rows, double max_rel_err,
           double max_rms_err)
{
    MvaSolver solver;
    double sum_sq = 0.0;
    size_t count = 0;
    for (size_t r = 0; r < num_rows; ++r) {
        auto inputs = DerivedInputs::compute(
            presets::appendixA(rows[r].level),
            ProtocolConfig::fromModString(rows[r].mods));
        for (size_t i = 0; i < std::size(kNs); ++i) {
            auto res = solver.solve(inputs, kNs[i]);
            double paper = rows[r].speedups[i];
            double rel = (res.speedup - paper) / paper;
            EXPECT_LE(std::fabs(rel), max_rel_err)
                << "level=" << to_string(rows[r].level)
                << " mods=" << rows[r].mods << " N=" << kNs[i]
                << " got=" << res.speedup << " paper=" << paper;
            sum_sq += rel * rel;
            ++count;
        }
    }
    double rms = std::sqrt(sum_sq / static_cast<double>(count));
    EXPECT_LE(rms, max_rms_err);
}

TEST(Table41, WriteOnceSpeedupsMatchPaper)
{
    checkTable(kTable41a, std::size(kTable41a), 0.06, 0.03);
}

TEST(Table41, Enhancement1SpeedupsMatchPaper)
{
    checkTable(kTable41b, std::size(kTable41b), 0.06, 0.035);
}

TEST(Table41, Enhancements14SpeedupsMatchPaper)
{
    checkTable(kTable41c, std::size(kTable41c), 0.06, 0.035);
}

TEST(Table41, QualitativeOrderingsHold)
{
    // The paper's headline findings (Section 4.1) must hold exactly:
    MvaSolver solver;
    for (auto level : kSharingLevels) {
        auto wo = DerivedInputs::compute(presets::appendixA(level),
                                         ProtocolConfig::fromModString(""));
        auto m1 = DerivedInputs::compute(presets::appendixA(level),
                                         ProtocolConfig::fromModString("1"));
        auto m14 = DerivedInputs::compute(
            presets::appendixA(level), ProtocolConfig::fromModString("14"));
        for (unsigned n : {4u, 10u, 20u, 100u}) {
            double s_wo = solver.solve(wo, n).speedup;
            double s_m1 = solver.solve(m1, n).speedup;
            double s_m14 = solver.solve(m14, n).speedup;
            // "Modification 1 is clearly advantageous"
            EXPECT_GT(s_m1, s_wo);
            // mods 1+4 dominate mod 1 alone at scale
            if (n >= 10) {
                EXPECT_GE(s_m14, s_m1 * 0.99);
            }
        }
        // speedup degrades with sharing for Write-Once
    }
}

TEST(Table41, Mod4GainGrowsWithSharingAndSize)
{
    // Section 4.1: "Modification 4 is more advantageous as system size
    // and the level of sharing increase."
    MvaSolver solver;
    auto gain = [&](SharingLevel level, unsigned n) {
        auto m1 = DerivedInputs::compute(presets::appendixA(level),
                                         ProtocolConfig::fromModString("1"));
        auto m14 = DerivedInputs::compute(
            presets::appendixA(level), ProtocolConfig::fromModString("14"));
        return solver.solve(m14, n).speedup / solver.solve(m1, n).speedup;
    };
    EXPECT_GT(gain(SharingLevel::TwentyPercent, 100),
              gain(SharingLevel::FivePercent, 100));
    EXPECT_GT(gain(SharingLevel::FivePercent, 100),
              gain(SharingLevel::OnePercent, 100) - 1e-9);
    EXPECT_GT(gain(SharingLevel::TwentyPercent, 100),
              gain(SharingLevel::TwentyPercent, 10));
}

TEST(Table41, Mods2And3AreNearlyIndistinguishable)
{
    // Section 4: "Speedups for modifications 2 and 3 are nearly
    // indistinguishable from the results for the protocols without
    // these modifications."
    MvaSolver solver;
    for (auto level : kSharingLevels) {
        for (unsigned n : {4u, 10u, 20u}) {
            auto wo = solver.solve(
                DerivedInputs::compute(presets::appendixA(level),
                                       ProtocolConfig::fromModString("")),
                n);
            for (const char *mods : {"2", "3"}) {
                auto m = solver.solve(
                    DerivedInputs::compute(
                        presets::appendixA(level),
                        ProtocolConfig::fromModString(mods)),
                    n);
                EXPECT_NEAR(m.speedup / wo.speedup, 1.0, 0.05)
                    << "mods=" << mods << " N=" << n;
            }
        }
    }
}

TEST(Table41, ProcessingPowerMatchesSection44)
{
    // Section 4.4: mods 1+2+3, 9 processors, 5% sharing -> the MVA
    // model predicts a processing power of 4.32 (GTPN: 4.1).
    MvaSolver solver;
    auto r = solver.solve(
        DerivedInputs::compute(presets::appendixA(SharingLevel::FivePercent),
                               ProtocolConfig::fromModString("123")),
        9);
    EXPECT_NEAR(r.processingPower, 4.32, 4.32 * 0.05);
}

TEST(Table41, AsymptoticPlateauBeyondTwenty)
{
    // Table 4.1(c) note: "performance does not change appreciably
    // beyond twenty processors."
    MvaSolver solver;
    for (const char *mods : {"", "1", "14"}) {
        auto inputs = DerivedInputs::compute(
            presets::appendixA(SharingLevel::FivePercent),
            ProtocolConfig::fromModString(mods));
        double s20 = solver.solve(inputs, 20).speedup;
        double s100 = solver.solve(inputs, 100).speedup;
        double s1000 = solver.solve(inputs, 1000).speedup;
        EXPECT_NEAR(s100 / s20, 1.0, 0.03);
        EXPECT_NEAR(s1000 / s100, 1.0, 0.02);
    }
}

} // namespace
} // namespace snoop
