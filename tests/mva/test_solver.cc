/** Unit tests for the MVA solver core behaviors. */

#include <gtest/gtest.h>

#include "mva/solver.hh"

namespace snoop {
namespace {

DerivedInputs
appendixAInputs(SharingLevel level, const std::string &mods)
{
    return DerivedInputs::compute(presets::appendixA(level),
                                  ProtocolConfig::fromModString(mods));
}

TEST(MvaSolver, SingleProcessorHasNoContention)
{
    MvaSolver solver;
    auto r = solver.solve(appendixAInputs(SharingLevel::FivePercent, ""), 1);
    EXPECT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.wBus, 0.0);
    EXPECT_DOUBLE_EQ(r.qBus, 0.0);
    EXPECT_DOUBLE_EQ(r.nInterference, 0.0);
    // R = tau + p_bc*T_write + p_rr*t_read + T_supply
    auto &d = r.inputs;
    double expected =
        d.tau + d.pBc * d.timing.tWrite + d.pRr * d.tRead +
        d.timing.tSupply;
    EXPECT_NEAR(r.responseTime, expected, 1e-9);
    EXPECT_NEAR(r.speedup, (d.tau + 1.0) / expected, 1e-9);
}

TEST(MvaSolver, SpeedupFormulaMatchesSection4)
{
    MvaSolver solver;
    auto r = solver.solve(appendixAInputs(SharingLevel::FivePercent, ""), 8);
    EXPECT_NEAR(r.speedup, 8.0 * (2.5 + 1.0) / r.responseTime, 1e-12);
    EXPECT_NEAR(r.processingPower, 8.0 * 2.5 / r.responseTime, 1e-12);
    // Section 4.4: processing power = speedup * tau / (tau + T_supply)
    EXPECT_NEAR(r.processingPower, r.speedup * 2.5 / 3.5, 1e-12);
}

TEST(MvaSolver, ConvergesWithinPaperBudget)
{
    // Section 3.2: "Solution of the equations converged within 15
    // iterations in all experiments reported in this paper." The
    // paper's detailed-model comparisons go up to N=10; near-saturated
    // systems (N >= 20) converge but need more steps, so the 15-step
    // bound is asserted over the paper's range and plain convergence
    // beyond it.
    // Tolerance 1e-3 (relative, on R) resolves speedups to the three
    // significant digits the paper's tables report.
    MvaOptions opts;
    opts.tolerance = 1e-3;
    MvaSolver solver(opts);
    for (auto level : kSharingLevels) {
        for (const char *mods : {"", "1", "14", "123"}) {
            for (unsigned n : {1u, 2u, 6u, 10u, 20u, 100u}) {
                auto r = solver.solve(appendixAInputs(level, mods), n);
                EXPECT_TRUE(r.converged);
                if (n <= 10) {
                    EXPECT_LE(r.iterations, 15)
                        << "level=" << to_string(level)
                        << " mods=" << mods << " N=" << n;
                }
            }
        }
    }
}

TEST(MvaSolver, TraceIsRecordedOnRequest)
{
    MvaOptions opts;
    opts.recordTrace = true;
    MvaSolver solver(opts);
    auto r = solver.solve(appendixAInputs(SharingLevel::FivePercent, ""), 6);
    EXPECT_EQ(static_cast<int>(r.convergenceTrace.size()), r.iterations);
    // residuals eventually decrease below tolerance
    EXPECT_LT(r.convergenceTrace.back(), solver.options().tolerance);
}

TEST(MvaSolver, TraceOffByDefault)
{
    MvaSolver solver;
    auto r = solver.solve(appendixAInputs(SharingLevel::FivePercent, ""), 6);
    EXPECT_TRUE(r.convergenceTrace.empty());
}

TEST(MvaSolver, SweepMatchesIndividualSolves)
{
    MvaSolver solver;
    auto inputs = appendixAInputs(SharingLevel::OnePercent, "1");
    auto sweep = solver.sweep(inputs, {1, 4, 10});
    ASSERT_EQ(sweep.size(), 3u);
    EXPECT_EQ(sweep[0].numProcessors, 1u);
    EXPECT_EQ(sweep[2].numProcessors, 10u);
    auto lone = solver.solve(inputs, 4);
    EXPECT_DOUBLE_EQ(sweep[1].speedup, lone.speedup);
}

TEST(MvaSolver, BusUtilizationMatchesPaperExample)
{
    // Section 4.2: "in the 6-processor case, the GTPN and MVA estimates
    // of bus utilization are approximately 81% and 77%, respectively."
    MvaSolver solver;
    auto r = solver.solve(appendixAInputs(SharingLevel::FivePercent, ""), 6);
    EXPECT_NEAR(r.busUtil, 0.77, 0.04);
}

TEST(MvaSolver, AllLocalWorkloadHasNoBusTraffic)
{
    WorkloadParams p = presets::appendixA(SharingLevel::FivePercent);
    p.hPrivate = p.hSro = p.hSw = 1.0;
    p.amodPrivate = p.amodSw = 1.0;
    MvaSolver solver;
    auto r = solver.solve(p, ProtocolConfig::writeOnce(), 16);
    EXPECT_DOUBLE_EQ(r.busUtil, 0.0);
    EXPECT_DOUBLE_EQ(r.wBus, 0.0);
    // R = tau + T_supply exactly; speedup = N
    EXPECT_NEAR(r.speedup, 16.0, 1e-9);
}

TEST(MvaSolver, ZeroThinkTimeStillSolves)
{
    WorkloadParams p = presets::appendixA(SharingLevel::FivePercent);
    p.tau = 0.0;
    MvaSolver solver;
    auto r = solver.solve(p, ProtocolConfig::writeOnce(), 8);
    EXPECT_TRUE(r.converged);
    EXPECT_GT(r.responseTime, 0.0);
    EXPECT_GT(r.speedup, 0.0);
}

TEST(MvaSolver, CustomTimingPropagates)
{
    BusTiming t;
    t.tReadMem = 20.0;
    MvaSolver solver;
    auto p = presets::appendixA(SharingLevel::FivePercent);
    auto slow = solver.solve(p, ProtocolConfig::writeOnce(), 8, t);
    auto fast = solver.solve(p, ProtocolConfig::writeOnce(), 8);
    EXPECT_LT(slow.speedup, fast.speedup);
}

TEST(MvaSolver, SummaryMentionsHeadlineNumbers)
{
    MvaSolver solver;
    auto r = solver.solve(appendixAInputs(SharingLevel::FivePercent, ""), 6);
    std::string s = r.summary();
    EXPECT_NE(s.find("N=6"), std::string::npos);
    EXPECT_NE(s.find("speedup="), std::string::npos);
}

TEST(MvaSolver, ExhaustedIterationBudgetIsReportedHonestly)
{
    // With a one-iteration budget the solve cannot converge; the
    // result must say so (and warn) rather than pretend.
    MvaOptions opts;
    opts.maxIterations = 1;
    MvaSolver solver(opts);
    testing::internal::CaptureStderr();
    auto r = solver.solve(appendixAInputs(SharingLevel::FivePercent, ""),
                          10);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.iterations, 1);
    EXPECT_NE(err.find("no convergence"), std::string::npos);
    // the partial result is still well-formed
    EXPECT_GT(r.speedup, 0.0);
    EXPECT_GT(r.responseTime, 0.0);
}

TEST(MvaSolver, DampedFallbackRescuesSaturatedSystems)
{
    // Deep saturation defeats plain successive substitution; the
    // fallback ladder must still converge (and quietly - no warning).
    MvaSolver solver;
    testing::internal::CaptureStderr();
    auto r = solver.solve(appendixAInputs(SharingLevel::OnePercent, ""),
                          4096);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(err.find("no convergence"), std::string::npos);
    EXPECT_GT(r.busUtil, 0.99);
}

TEST(MvaSolver, ZeroProcessorsThrows)
{
    MvaSolver solver;
    try {
        solver.solve(appendixAInputs(SharingLevel::FivePercent, ""), 0);
        FAIL() << "expected SolveException";
    } catch (const SolveException &e) {
        EXPECT_EQ(e.error().code, SolveErrorCode::InvalidArgument);
        EXPECT_NE(std::string(e.what()).find("at least one"),
                  std::string::npos);
    }
    // And through the non-throwing entry point:
    auto r = solver.trySolve(
        appendixAInputs(SharingLevel::FivePercent, ""), 0);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::InvalidArgument);
}

TEST(MvaSolver, BadOptionsThrow)
{
    EXPECT_THROW(MvaSolver(MvaOptions{.maxIterations = 0}),
                 SolveException);
    EXPECT_THROW(MvaSolver(MvaOptions{.tolerance = -1.0}),
                 SolveException);
    EXPECT_THROW(MvaSolver(MvaOptions{.damping = 2.0}), SolveException);
}

} // namespace
} // namespace snoop
