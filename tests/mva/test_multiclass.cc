/** Tests for the multi-class (heterogeneous processors) extension. */

#include <gtest/gtest.h>

#include "mva/multiclass.hh"
#include "sim/prob_sim.hh"

namespace snoop {
namespace {

DerivedInputs
appendixAInputs(SharingLevel level, const std::string &mods,
                double tau = 2.5)
{
    WorkloadParams wl = presets::appendixA(level);
    wl.tau = tau;
    return DerivedInputs::compute(wl,
                                  ProtocolConfig::fromModString(mods));
}

TEST(Multiclass, SingleClassMatchesFlatSolverExactly)
{
    auto inputs = appendixAInputs(SharingLevel::FivePercent, "");
    MvaSolver flat;
    for (unsigned n : {1u, 4u, 10u, 100u}) {
        auto flat_res = flat.solve(inputs, n);
        auto multi = solveMulticlass({{"all", n, inputs}});
        ASSERT_TRUE(multi.converged);
        EXPECT_NEAR(multi.totalSpeedup, flat_res.speedup,
                    flat_res.speedup * 1e-9)
            << "N=" << n;
        EXPECT_NEAR(multi.busUtil, flat_res.busUtil, 1e-9);
        EXPECT_NEAR(multi.memUtil, flat_res.memUtil, 1e-9);
    }
}

TEST(Multiclass, SplittingAClassChangesNothing)
{
    auto inputs = appendixAInputs(SharingLevel::FivePercent, "1");
    auto merged = solveMulticlass({{"all", 8, inputs}});
    auto split = solveMulticlass(
        {{"left", 3, inputs}, {"right", 5, inputs}});
    EXPECT_NEAR(split.totalSpeedup, merged.totalSpeedup,
                merged.totalSpeedup * 1e-9);
    EXPECT_NEAR(split.classes[0].responseTime,
                split.classes[1].responseTime, 1e-9);
}

TEST(Multiclass, SlowerClassCyclesSlowerButComputesMore)
{
    auto fast = appendixAInputs(SharingLevel::FivePercent, "", 2.5);
    auto slow = appendixAInputs(SharingLevel::FivePercent, "", 10.0);
    auto res = solveMulticlass({{"fast", 4, fast}, {"slow", 4, slow}});
    ASSERT_TRUE(res.converged);
    // The slow class has longer cycles...
    EXPECT_GT(res.classes[1].responseTime, res.classes[0].responseTime);
    // ...but spends a larger fraction of each cycle computing, so its
    // per-class speedup (utilization-like) is higher.
    EXPECT_GT(res.classes[1].speedup, res.classes[0].speedup);
    // The fast class consumes more of the bus.
    EXPECT_GT(res.classes[0].busDemandShare,
              res.classes[1].busDemandShare);
}

TEST(Multiclass, MixedProtocolsShareTheBusConsistently)
{
    // One class running Write-Once alongside one running mods 1+4:
    // total bus utilization is a probability and the mod-1+4 class
    // does better per processor.
    auto wo = appendixAInputs(SharingLevel::TwentyPercent, "");
    auto m14 = appendixAInputs(SharingLevel::TwentyPercent, "14");
    auto res = solveMulticlass({{"wo", 6, wo}, {"m14", 6, m14}});
    ASSERT_TRUE(res.converged);
    EXPECT_LE(res.busUtil, 1.0);
    EXPECT_GT(res.classes[1].speedup / 6.0,
              res.classes[0].speedup / 6.0);
}

TEST(Multiclass, HeavyLoadStillConverges)
{
    auto inputs = appendixAInputs(SharingLevel::FivePercent, "");
    auto res = solveMulticlass(
        {{"a", 200, inputs},
         {"b", 200, appendixAInputs(SharingLevel::TwentyPercent, "1")}});
    EXPECT_TRUE(res.converged);
    EXPECT_GT(res.busUtil, 0.99);
    EXPECT_GT(res.totalSpeedup, 0.0);
}

TEST(Multiclass, AgreesWithHeterogeneousSimulation)
{
    // Two classes differing in tau (2.5 vs 10), same protocol and
    // sharing. The simulator runs 8 processors with per-processor tau
    // multipliers; the multi-class MVA must predict the per-class
    // cycle times within the usual few-percent band.
    WorkloadParams wl = presets::appendixA(SharingLevel::FivePercent);
    SimConfig cfg;
    cfg.numProcessors = 8;
    cfg.workload = wl;
    cfg.protocol = ProtocolConfig::writeOnce();
    cfg.seed = 321;
    cfg.warmupRequests = 10000;
    cfg.measuredRequests = 400000;
    cfg.tauMultipliers = {1, 1, 1, 1, 4, 4, 4, 4};
    auto sim = simulate(cfg);
    ASSERT_EQ(sim.perProcessorResponse.size(), 8u);

    auto fast = appendixAInputs(SharingLevel::FivePercent, "", 2.5);
    auto slow = appendixAInputs(SharingLevel::FivePercent, "", 10.0);
    auto mva = solveMulticlass({{"fast", 4, fast}, {"slow", 4, slow}});

    double sim_fast = 0.0, sim_slow = 0.0;
    for (int i = 0; i < 4; ++i) {
        sim_fast += sim.perProcessorResponse[static_cast<size_t>(i)] / 4;
        sim_slow +=
            sim.perProcessorResponse[static_cast<size_t>(i + 4)] / 4;
    }
    EXPECT_NEAR(mva.classes[0].responseTime, sim_fast, sim_fast * 0.08);
    EXPECT_NEAR(mva.classes[1].responseTime, sim_slow, sim_slow * 0.08);
}

TEST(Multiclass, BadInputsThrow)
{
    EXPECT_THROW(solveMulticlass({}), SolveException);
    auto inputs = appendixAInputs(SharingLevel::FivePercent, "");
    EXPECT_THROW(solveMulticlass({{"empty", 0, inputs}}),
                 SolveException);
    BusTiming other;
    other.tWrite = 2.0;
    auto mismatched = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::writeOnce(), other);
    try {
        solveMulticlass({{"a", 2, inputs}, {"b", 2, mismatched}});
        FAIL() << "expected SolveException";
    } catch (const SolveException &e) {
        EXPECT_EQ(e.error().code, SolveErrorCode::InvalidArgument);
        EXPECT_NE(std::string(e.what()).find("timing"),
                  std::string::npos);
    }
}

TEST(SimConfigDeath, BadTauMultipliers)
{
    SimConfig cfg;
    cfg.workload = presets::appendixA(SharingLevel::FivePercent);
    cfg.numProcessors = 4;
    cfg.tauMultipliers = {1.0, 2.0};
    EXPECT_EXIT(simulate(cfg), testing::ExitedWithCode(1),
                "tauMultipliers");
    cfg.tauMultipliers = {1.0, 2.0, -1.0, 1.0};
    EXPECT_EXIT(simulate(cfg), testing::ExitedWithCode(1), "positive");
}

} // namespace
} // namespace snoop
