/**
 * Tests for the MVA solver's numeric guards and non-convergence
 * policy: a solve that exhausts its iteration budget must warn, throw
 * SolveException, or pass silently exactly as
 * MvaOptions::onNonConvergence directs, and every result the solver
 * does hand back must satisfy the validity contract (finite, positive
 * response time, utilizations and probabilities in range).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mva/solver.hh"
#include "util/fixed_point.hh"

namespace snoop {
namespace {

DerivedInputs
appendixAInputs(SharingLevel level, const std::string &mods)
{
    return DerivedInputs::compute(presets::appendixA(level),
                                  ProtocolConfig::fromModString(mods));
}

/** One iteration cannot converge a contended 10-processor system. */
MvaOptions
divergentOptions(NonConvergencePolicy policy)
{
    MvaOptions opts;
    opts.maxIterations = 1;
    opts.onNonConvergence = policy;
    return opts;
}

TEST(SolverGuards, WarnPolicyWarnsAndReturnsPartialResult)
{
    MvaSolver solver(divergentOptions(NonConvergencePolicy::Warn));
    testing::internal::CaptureStderr();
    auto r = solver.solve(appendixAInputs(SharingLevel::FivePercent, ""),
                          10);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_FALSE(r.converged);
    EXPECT_NE(err.find("no convergence"), std::string::npos);
    // The partial result still passed the numeric guard on the way out.
    EXPECT_GT(r.speedup, 0.0);
    EXPECT_GT(r.responseTime, 0.0);
    EXPECT_LE(r.busUtil, 1.0 + 1e-9);
}

TEST(SolverGuards, AcceptPolicyIsSilent)
{
    MvaSolver solver(divergentOptions(NonConvergencePolicy::Accept));
    testing::internal::CaptureStderr();
    auto r = solver.solve(appendixAInputs(SharingLevel::FivePercent, ""),
                          10);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(err.find("no convergence"), std::string::npos);
}

TEST(SolverGuards, FatalPolicyThrowsSolveException)
{
    MvaSolver solver(divergentOptions(NonConvergencePolicy::Fatal));
    try {
        solver.solve(appendixAInputs(SharingLevel::FivePercent, ""), 10);
        FAIL() << "expected SolveException";
    } catch (const SolveException &e) {
        EXPECT_EQ(e.error().code, SolveErrorCode::NonConvergence);
        EXPECT_NE(std::string(e.what()).find("no convergence"),
                  std::string::npos);
    }
}

TEST(SolverGuards, FatalPolicyIsAnErrorThroughTrySolve)
{
    MvaSolver solver(divergentOptions(NonConvergencePolicy::Fatal));
    auto r = solver.trySolve(
        appendixAInputs(SharingLevel::FivePercent, ""), 10);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::NonConvergence);
}

TEST(SolverGuards, ConvergedSolveIsUnaffectedByPolicy)
{
    // The policy only matters on non-convergence; a clean solve must
    // produce identical results under all three.
    auto inputs = appendixAInputs(SharingLevel::FivePercent, "");
    MvaResult results[3];
    NonConvergencePolicy policies[] = {NonConvergencePolicy::Warn,
                                       NonConvergencePolicy::Fatal,
                                       NonConvergencePolicy::Accept};
    for (int i = 0; i < 3; ++i) {
        MvaOptions opts;
        opts.onNonConvergence = policies[i];
        MvaSolver solver(opts);
        results[i] = solver.solve(inputs, 8);
        EXPECT_TRUE(results[i].converged);
    }
    EXPECT_DOUBLE_EQ(results[0].speedup, results[1].speedup);
    EXPECT_DOUBLE_EQ(results[0].speedup, results[2].speedup);
    EXPECT_DOUBLE_EQ(results[0].responseTime, results[1].responseTime);
    EXPECT_DOUBLE_EQ(results[0].responseTime, results[2].responseTime);
}

TEST(SolverGuards, GuardedOutputsAreInRangeAcrossTheSweep)
{
    // Every solve in a broad sweep runs the output guard internally;
    // reaching this point without a panic means all outputs validated.
    MvaSolver solver;
    for (auto level : kSharingLevels) {
        for (const char *mods : {"", "1", "14", "123"}) {
            for (unsigned n : {1u, 2u, 10u, 100u, 1000u}) {
                auto r = solver.solve(appendixAInputs(level, mods), n);
                EXPECT_TRUE(r.converged);
                EXPECT_GE(r.busUtil, 0.0);
                EXPECT_LE(r.busUtil, 1.0 + 1e-9);
                EXPECT_GE(r.pBusyBus, 0.0);
                EXPECT_LE(r.pBusyBus, 1.0 + 1e-9);
            }
        }
    }
}

TEST(SolverGuards, FixedPointPolicyMatchesSolverPolicy)
{
    // The same enum drives the generic fixed-point engine.
    FixedPointOptions opts;
    opts.maxIterations = 3;
    opts.onNonConvergence = NonConvergencePolicy::Accept;
    FixedPointSolver fp(opts);
    testing::internal::CaptureStderr();
    auto res = fp.solve(
        [](const std::vector<double> &x) {
            return std::vector<double>{x[0] + 1.0};
        },
        {0.0});
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(err.find("no convergence"), std::string::npos);
}

TEST(SolverGuards, FixedPointFatalPolicyThrows)
{
    FixedPointOptions opts;
    opts.maxIterations = 3;
    opts.onNonConvergence = NonConvergencePolicy::Fatal;
    FixedPointSolver fp(opts);
    EXPECT_THROW(fp.solve(
                     [](const std::vector<double> &x) {
                         return std::vector<double>{x[0] + 1.0};
                     },
                     {0.0}),
                 SolveException);
}

TEST(SolverGuards, NonFiniteOrNegativeSeedIsRejected)
{
    MvaSolver solver;
    auto inputs = appendixAInputs(SharingLevel::FivePercent, "");
    for (MvaSeed seed : {MvaSeed{std::nan(""), 0.0, 0.0},
                         MvaSeed{0.0, INFINITY, 0.0},
                         MvaSeed{0.0, 0.0, -1.0}}) {
        auto r = solver.trySolve(inputs, 10, seed);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.error().code, SolveErrorCode::InvalidArgument);
        EXPECT_NE(r.error().message.find("seed"), std::string::npos);
    }
}

TEST(SolverGuards, AllZeroSeedIsExactlyTheColdStart)
{
    MvaSolver solver;
    auto inputs = appendixAInputs(SharingLevel::FivePercent, "13");
    auto cold = solver.trySolve(inputs, 10);
    auto zero = solver.trySolve(inputs, 10, MvaSeed{});
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(zero.ok());
    EXPECT_FALSE(cold.value().warmStarted);
    EXPECT_FALSE(zero.value().warmStarted);
    EXPECT_EQ(cold.value().iterations, zero.value().iterations);
    EXPECT_EQ(cold.value().speedup, zero.value().speedup);
    EXPECT_EQ(cold.value().responseTime, zero.value().responseTime);
}

TEST(SolverGuards, SelfSeedConvergesAlmostImmediately)
{
    MvaSolver solver;
    auto inputs = appendixAInputs(SharingLevel::FivePercent, "13");
    auto cold = solver.trySolve(inputs, 10);
    ASSERT_TRUE(cold.ok());
    auto warm = solver.trySolve(inputs, 10,
                                MvaSeed::fromResult(cold.value()));
    ASSERT_TRUE(warm.ok());
    EXPECT_TRUE(warm.value().warmStarted);
    // Restarting at the fixed point needs only the iterations that
    // confirm it is one.
    EXPECT_LE(warm.value().iterations, 3);
}

TEST(SolverGuards, NearbySeedConvergesFasterAndAgrees)
{
    MvaSolver solver;
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    auto protocol = ProtocolConfig::fromModString("13");
    auto anchor =
        solver.trySolve(DerivedInputs::compute(wl, protocol), 10);
    ASSERT_TRUE(anchor.ok());

    wl.hSw += 1e-3; // a near-duplicate query
    auto inputs = DerivedInputs::compute(wl, protocol);
    auto cold = solver.trySolve(inputs, 10);
    auto warm = solver.trySolve(inputs, 10,
                                MvaSeed::fromResult(anchor.value()));
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(warm.ok());
    EXPECT_LT(warm.value().iterations, cold.value().iterations);
    // Both runs stop at the same tolerance, so the answers agree to
    // the envelope documented in docs/SERVING.md.
    EXPECT_NEAR(warm.value().responseTime, cold.value().responseTime,
                1e-5 * cold.value().responseTime);
    EXPECT_NEAR(warm.value().speedup, cold.value().speedup,
                1e-5 * cold.value().speedup);
}

TEST(SolverGuards, IterationBudgetExhaustionIsRecorded)
{
    MvaOptions opts;
    opts.iterationBudget = 3;
    opts.onNonConvergence = NonConvergencePolicy::Accept;
    MvaSolver solver(opts);
    auto r = solver.trySolve(
        appendixAInputs(SharingLevel::FivePercent, ""), 10);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().converged);
    EXPECT_TRUE(r.value().budgetExhausted);
}

TEST(SolverGuards, IterationBudgetUnderFatalIsAStructuredError)
{
    MvaOptions opts;
    opts.iterationBudget = 3;
    opts.onNonConvergence = NonConvergencePolicy::Fatal;
    MvaSolver solver(opts);
    auto r = solver.trySolve(
        appendixAInputs(SharingLevel::FivePercent, ""), 10);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::BudgetExhausted);
}

TEST(SolverGuards, ExpiredTimeBudgetIsAStructuredError)
{
    // A budget that expires before the first iteration used to come
    // back as a *value*: speedup == N (perfect linear speedup),
    // responseTime == tau + tSupply, every submodel measure zero -
    // plausible-looking garbage under Warn/Accept. Zero completed
    // iterations must be a BudgetExhausted error instead, under
    // every policy.
    MvaOptions opts;
    opts.timeBudget = 1e-12; // expires before the first check
    opts.onNonConvergence = NonConvergencePolicy::Accept;
    MvaSolver solver(opts);
    auto r = solver.trySolve(
        appendixAInputs(SharingLevel::FivePercent, ""), 10);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, SolveErrorCode::BudgetExhausted);
    EXPECT_NE(r.error().message.find("before the first iteration"),
              std::string::npos)
        << r.error().describe();
}

} // namespace
} // namespace snoop
