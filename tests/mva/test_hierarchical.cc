/** Tests for the two-level bus-hierarchy extension. */

#include <gtest/gtest.h>

#include "mva/hierarchical.hh"

namespace snoop {
namespace {

HierarchicalConfig
base()
{
    HierarchicalConfig c;
    c.clusters = 4;
    c.processorsPerCluster = 4;
    c.pLocal = 0.92;
    c.tLocalBus = 5.0;
    c.pRemote = 0.3;
    c.tGlobalBus = 9.0;
    return c;
}

TEST(Hierarchical, SolvesAndBounds)
{
    auto r = solveHierarchical(base());
    EXPECT_TRUE(r.converged);
    EXPECT_GT(r.speedup, 0.0);
    EXPECT_LE(r.speedup, 16.0);
    EXPECT_GE(r.wLocalBus, 0.0);
    EXPECT_GE(r.wGlobalBus, 0.0);
    EXPECT_LE(r.localBusUtil, 1.0);
    EXPECT_LE(r.globalBusUtil, 1.0);
}

TEST(Hierarchical, SingleProcessorNoContention)
{
    auto c = base();
    c.clusters = 1;
    c.processorsPerCluster = 1;
    auto r = solveHierarchical(c);
    EXPECT_DOUBLE_EQ(r.wLocalBus, 0.0);
    EXPECT_DOUBLE_EQ(r.wGlobalBus, 0.0);
    double p_bus = 1.0 - c.pLocal;
    double expected_r = c.tau + c.tSupply +
        p_bus * (c.tLocalBus + c.pRemote * c.tGlobalBus);
    EXPECT_NEAR(r.responseTime, expected_r, 1e-9);
}

TEST(Hierarchical, MoreClustersRelieveLocalBuses)
{
    // Same total N = 16, different partitioning: more clusters mean
    // fewer processors per local bus, so local contention drops.
    auto flat = base();
    flat.clusters = 1;
    flat.processorsPerCluster = 16;
    auto split = base();
    split.clusters = 8;
    split.processorsPerCluster = 2;
    auto r_flat = solveHierarchical(flat);
    auto r_split = solveHierarchical(split);
    EXPECT_LT(r_split.wLocalBus, r_flat.wLocalBus);
    EXPECT_GT(r_split.speedup, r_flat.speedup);
}

TEST(Hierarchical, RemoteTrafficMovesTheBottleneck)
{
    auto local_heavy = base();
    local_heavy.pRemote = 0.05;
    auto remote_heavy = base();
    remote_heavy.pRemote = 0.8;
    auto rl = solveHierarchical(local_heavy);
    auto rr = solveHierarchical(remote_heavy);
    EXPECT_GT(rl.speedup, rr.speedup);
    EXPECT_GT(rr.globalBusUtil, rl.globalBusUtil);
}

TEST(Hierarchical, SpeedupGrowsWithClustersAtFixedClusterSize)
{
    double prev = 0.0;
    for (unsigned clusters : {1u, 2u, 4u, 8u}) {
        auto c = base();
        c.clusters = clusters;
        auto r = solveHierarchical(c);
        EXPECT_GT(r.speedup, prev * 0.999) << "C=" << clusters;
        prev = r.speedup;
    }
}

TEST(Hierarchical, GlobalBusEventuallySaturates)
{
    auto c = base();
    c.clusters = 64;
    c.processorsPerCluster = 4;
    auto r = solveHierarchical(c);
    EXPECT_TRUE(r.converged);
    EXPECT_GT(r.globalBusUtil, 0.95);
    // speedup bounded by the global-bus saturation limit
    double p_bus = 1.0 - c.pLocal;
    double limit = (c.tau + c.tSupply) /
        (p_bus * c.pRemote * c.tGlobalBus);
    EXPECT_LE(r.speedup, limit * 1.02);
}

TEST(Hierarchical, ZeroRemoteReducesToIndependentClusters)
{
    // With pRemote = 0 clusters do not interact: doubling the cluster
    // count exactly doubles speedup.
    auto c = base();
    c.pRemote = 0.0;
    c.clusters = 2;
    auto r2 = solveHierarchical(c);
    c.clusters = 4;
    auto r4 = solveHierarchical(c);
    EXPECT_NEAR(r4.speedup, 2.0 * r2.speedup, 1e-6);
}

TEST(Hierarchical, FromFlatInputsProducesValidConfig)
{
    auto d = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::writeOnce());
    auto c = hierarchicalFromFlat(d, 4, 4, 0.5);
    c.validate();
    EXPECT_EQ(c.totalProcessors(), 16u);
    EXPECT_NEAR(c.pLocal, d.pLocal, 1e-12);
    EXPECT_GT(c.pRemote, 0.0);
    EXPECT_LT(c.pRemote, 1.0);
    auto r = solveHierarchical(c);
    EXPECT_TRUE(r.converged);
    EXPECT_GT(r.speedup, 1.0);
}

TEST(Hierarchical, ClusterCachingHelps)
{
    auto d = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::writeOnce());
    auto none = solveHierarchical(hierarchicalFromFlat(d, 4, 4, 0.0));
    auto half = solveHierarchical(hierarchicalFromFlat(d, 4, 4, 0.5));
    EXPECT_GT(half.speedup, none.speedup);
}

TEST(Hierarchical, Mod3SuppressesGlobalBroadcastTraffic)
{
    auto wo = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::writeOnce());
    auto m3 = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::fromModString("3"));
    auto c_wo = hierarchicalFromFlat(wo, 4, 4, 0.0);
    auto c_m3 = hierarchicalFromFlat(m3, 4, 4, 0.0);
    // Invalidations stay local, so the remote fraction drops.
    EXPECT_LT(c_m3.pRemote * (1.0 - c_m3.pLocal),
              c_wo.pRemote * (1.0 - c_wo.pLocal) + 1e-12);
}

TEST(Hierarchical, BadConfigThrows)
{
    HierarchicalConfig c;
    c.clusters = 0;
    try {
        solveHierarchical(c);
        FAIL() << "expected SolveException";
    } catch (const SolveException &e) {
        EXPECT_EQ(e.error().code, SolveErrorCode::InvalidArgument);
        EXPECT_NE(std::string(e.what()).find("at least one"),
                  std::string::npos);
    }
    HierarchicalConfig c2;
    c2.pRemote = 1.5;
    EXPECT_THROW(solveHierarchical(c2), SolveException);
    auto d = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::writeOnce());
    EXPECT_THROW(hierarchicalFromFlat(d, 2, 2, 2.0), SolveException);
}

} // namespace
} // namespace snoop
