/**
 * Tests for the SoA batch engine (BatchMvaSolver): every lane must be
 * bit-identical to the scalar MvaSolver::trySolve of the same cell -
 * the same measures, diagnostics, attempt ladder, and convergence
 * trace, at any SNOOP_JOBS setting - and a faulted lane (non-finite
 * inputs, injected solver faults, invalid arguments) must fail alone,
 * with the same structured error the scalar engine produces, without
 * perturbing its neighbors.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "mva/batch_solver.hh"
#include "mva/solver.hh"
#include "util/fault.hh"
#include "util/parallel.hh"

namespace snoop {
namespace {

DerivedInputs
appendixAInputs(SharingLevel level, const std::string &mods)
{
    return DerivedInputs::compute(presets::appendixA(level),
                                  ProtocolConfig::fromModString(mods));
}

/** The Table 4-1-shaped grid both engines are compared across. */
std::vector<MvaJob>
tableGridJobs(const MvaOptions &opts)
{
    std::vector<MvaJob> jobs;
    for (auto level : kSharingLevels) {
        for (const char *mods : {"", "1", "13", "123"}) {
            for (unsigned n :
                 {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 1000u}) {
                MvaJob job;
                job.inputs = appendixAInputs(level, mods);
                job.n = n;
                job.opts = opts;
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

/** Scalar reference results, one trySolve per job, same options. */
std::vector<Expected<MvaResult>>
scalarReference(const std::vector<MvaJob> &jobs)
{
    std::vector<Expected<MvaResult>> out;
    out.reserve(jobs.size());
    for (const MvaJob &job : jobs) {
        MvaSolver solver(job.opts);
        // snoop-lint: nonconvergence-ok (reference values compared
        // field-for-field below, converged flag included)
        out.push_back(solver.trySolve(job.inputs, job.n, job.seed));
    }
    return out;
}

/** Bit-identity: every field, == on doubles, no tolerance. */
void
expectBitIdentical(const MvaResult &a, const MvaResult &b)
{
    EXPECT_EQ(a.numProcessors, b.numProcessors);
    EXPECT_EQ(a.speedup, b.speedup);
    EXPECT_EQ(a.processingPower, b.processingPower);
    EXPECT_EQ(a.responseTime, b.responseTime);
    EXPECT_EQ(a.rLocal, b.rLocal);
    EXPECT_EQ(a.rBroadcast, b.rBroadcast);
    EXPECT_EQ(a.rRemoteRead, b.rRemoteRead);
    EXPECT_EQ(a.wBus, b.wBus);
    EXPECT_EQ(a.qBus, b.qBus);
    EXPECT_EQ(a.busUtil, b.busUtil);
    EXPECT_EQ(a.pBusyBus, b.pBusyBus);
    EXPECT_EQ(a.tBus, b.tBus);
    EXPECT_EQ(a.tResBus, b.tResBus);
    EXPECT_EQ(a.wMem, b.wMem);
    EXPECT_EQ(a.memUtil, b.memUtil);
    EXPECT_EQ(a.pBusyMem, b.pBusyMem);
    EXPECT_EQ(a.nInterference, b.nInterference);
    EXPECT_EQ(a.tInterference, b.tInterference);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.residual, b.residual);
    EXPECT_EQ(a.nonFinite, b.nonFinite);
    EXPECT_EQ(a.budgetExhausted, b.budgetExhausted);
    EXPECT_EQ(a.warmStarted, b.warmStarted);
    EXPECT_EQ(a.convergenceTrace, b.convergenceTrace);
    ASSERT_EQ(a.attempts.size(), b.attempts.size());
    for (size_t k = 0; k < a.attempts.size(); ++k) {
        EXPECT_EQ(a.attempts[k].damping, b.attempts[k].damping);
        EXPECT_EQ(a.attempts[k].iterations, b.attempts[k].iterations);
        EXPECT_EQ(a.attempts[k].residual, b.attempts[k].residual);
        EXPECT_EQ(a.attempts[k].converged, b.attempts[k].converged);
    }
}

/** Compare a whole batch against its scalar reference. */
void
expectBatchMatchesScalar(const std::vector<Expected<MvaResult>> &batch,
                         const std::vector<Expected<MvaResult>> &scalar)
{
    ASSERT_EQ(batch.size(), scalar.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        SCOPED_TRACE("lane " + std::to_string(i));
        ASSERT_EQ(batch[i].ok(), scalar[i].ok());
        if (batch[i].ok()) {
            expectBitIdentical(batch[i].value(), scalar[i].value());
        } else {
            EXPECT_EQ(batch[i].error().code, scalar[i].error().code);
            EXPECT_EQ(batch[i].error().message,
                      scalar[i].error().message);
        }
    }
}

/** Restores the pool size and fault registry around every test. */
class BatchSolver : public testing::Test
{
  protected:
    void SetUp() override { clearFaultSpecs(); }
    void TearDown() override
    {
        clearFaultSpecs();
        setParallelJobs(0);
    }
};

TEST_F(BatchSolver, BitIdenticalToScalarAcrossTheGridAtAnyJobCount)
{
    std::vector<MvaJob> jobs = tableGridJobs(MvaOptions{});
    auto scalar = scalarReference(jobs);
    BatchMvaSolver batch;
    for (unsigned n_jobs : {1u, 2u, 8u}) {
        SCOPED_TRACE("SNOOP_JOBS=" + std::to_string(n_jobs));
        setParallelJobs(n_jobs);
        expectBatchMatchesScalar(batch.solveBatch(jobs), scalar);
    }
}

TEST_F(BatchSolver, BlockSizeNeverChangesTheNumbers)
{
    std::vector<MvaJob> jobs = tableGridJobs(MvaOptions{});
    auto scalar = scalarReference(jobs);
    for (size_t block : {1u, 3u, 16u, 1000u}) {
        SCOPED_TRACE("blockSize=" + std::to_string(block));
        BatchMvaSolver batch(BatchOptions{block});
        expectBatchMatchesScalar(batch.solveBatch(jobs), scalar);
    }
}

TEST_F(BatchSolver, LadderLanesMixWithCleanLanes)
{
    // Lanes that walk the full recovery ladder (an iteration cap no
    // rung can converge under) interleaved with lanes that converge
    // on the first attempt: the per-lane ladder state must never
    // bleed across lanes of one SoA block.
    MvaOptions capped;
    capped.maxIterations = 2;
    capped.onNonConvergence = NonConvergencePolicy::Accept;
    std::vector<MvaJob> jobs;
    for (unsigned i = 0; i < 12; ++i) {
        MvaJob job;
        job.inputs = appendixAInputs(SharingLevel::FivePercent,
                                     i % 3 ? "13" : "");
        job.n = 10 + i;
        if (i % 2)
            job.opts = capped;
        jobs.push_back(std::move(job));
    }
    auto scalar = scalarReference(jobs);
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(scalar[i].ok());
        // The capped lanes really did walk the whole ladder.
        EXPECT_EQ(scalar[i].value().attempts.size(), i % 2 ? 5u : 1u);
        EXPECT_EQ(scalar[i].value().converged, i % 2 == 0);
    }
    BatchMvaSolver batch(BatchOptions{4});
    expectBatchMatchesScalar(batch.solveBatch(jobs), scalar);
}

TEST_F(BatchSolver, WarmAndColdLanesShareABatch)
{
    auto inputs = appendixAInputs(SharingLevel::FivePercent, "13");
    MvaSolver solver;
    auto anchor = solver.trySolve(inputs, 10);
    ASSERT_TRUE(anchor.ok());

    std::vector<MvaJob> jobs(2);
    jobs[0].inputs = inputs;
    jobs[0].n = 12; // cold
    jobs[1].inputs = inputs;
    jobs[1].n = 12; // warm, seeded from the N=10 fixed point
    jobs[1].seed = MvaSeed::fromResult(anchor.value());

    auto scalar = scalarReference(jobs);
    BatchMvaSolver batch;
    auto solved = batch.solveBatch(jobs);
    expectBatchMatchesScalar(solved, scalar);
    ASSERT_TRUE(solved[0].ok());
    ASSERT_TRUE(solved[1].ok());
    EXPECT_FALSE(solved[0].value().warmStarted);
    EXPECT_TRUE(solved[1].value().warmStarted);
    EXPECT_LT(solved[1].value().iterations,
              solved[0].value().iterations);
}

TEST_F(BatchSolver, NonFiniteLaneFailsAloneWithTheScalarError)
{
    std::vector<MvaJob> jobs(3);
    for (MvaJob &job : jobs) {
        job.inputs = appendixAInputs(SharingLevel::FivePercent, "");
        job.n = 10;
        job.opts.onNonConvergence = NonConvergencePolicy::Accept;
    }
    jobs[1].inputs.tau = std::nan(""); // poison the middle lane
    auto scalar = scalarReference(jobs);
    ASSERT_FALSE(scalar[1].ok());
    EXPECT_EQ(scalar[1].error().code, SolveErrorCode::NonFiniteIterate);
    BatchMvaSolver batch;
    auto solved = batch.solveBatch(jobs);
    expectBatchMatchesScalar(solved, scalar);
    EXPECT_TRUE(solved[0].ok());
    EXPECT_TRUE(solved[2].ok());
}

TEST_F(BatchSolver, InvalidLanesFailAloneWithTheScalarErrors)
{
    std::vector<MvaJob> jobs(3);
    for (MvaJob &job : jobs) {
        job.inputs = appendixAInputs(SharingLevel::FivePercent, "");
        job.n = 8;
    }
    jobs[0].n = 0;                       // no processors
    jobs[2].seed = {std::nan(""), 0, 0}; // non-finite seed
    BatchMvaSolver batch;
    auto solved = batch.solveBatch(jobs);
    ASSERT_FALSE(solved[0].ok());
    EXPECT_EQ(solved[0].error().code, SolveErrorCode::InvalidArgument);
    ASSERT_TRUE(solved[1].ok());
    EXPECT_TRUE(solved[1].value().converged);
    ASSERT_FALSE(solved[2].ok());
    EXPECT_EQ(solved[2].error().code, SolveErrorCode::InvalidArgument);
    EXPECT_NE(solved[2].error().message.find("seed"),
              std::string::npos);
}

TEST_F(BatchSolver, InjectedSolverFaultsMatchScalarLaneForLane)
{
    for (const char *spec :
         {"mva.nan", "mva.nonconverge", "mva.first_attempt"}) {
        SCOPED_TRACE(spec);
        ASSERT_TRUE(setFaultSpecs(spec).ok());
        MvaOptions opts;
        opts.onNonConvergence = NonConvergencePolicy::Accept;
        std::vector<MvaJob> jobs(4);
        for (size_t i = 0; i < jobs.size(); ++i) {
            jobs[i].inputs = appendixAInputs(
                SharingLevel::FivePercent, i % 2 ? "13" : "");
            jobs[i].n = 8 + static_cast<unsigned>(i);
            jobs[i].opts = opts;
        }
        auto scalar = scalarReference(jobs);
        BatchMvaSolver batch;
        expectBatchMatchesScalar(batch.solveBatch(jobs), scalar);
        clearFaultSpecs();
    }
}

TEST_F(BatchSolver, LadderRescuesAFaultedFirstAttemptBelowHalf)
{
    // The batch engine consumes the same shared rung table
    // (kRecoveryLadderRungs): a lane configured at damping 0.3 whose
    // first attempt is faulted must retry at 0.25, not give up.
    ASSERT_TRUE(setFaultSpecs("mva.first_attempt").ok());
    MvaJob job;
    job.inputs = appendixAInputs(SharingLevel::FivePercent, "");
    job.n = 8;
    job.opts.damping = 0.3;
    BatchMvaSolver batch;
    auto solved = batch.solveBatch({job});
    ASSERT_EQ(solved.size(), 1u);
    ASSERT_TRUE(solved[0].ok());
    const MvaResult &r = solved[0].value();
    EXPECT_TRUE(r.converged);
    ASSERT_GE(r.attempts.size(), 2u);
    EXPECT_EQ(r.attempts[0].damping, 0.3);
    EXPECT_FALSE(r.attempts[0].converged);
    EXPECT_EQ(r.attempts[1].damping, 0.25);
    EXPECT_TRUE(r.attempts.back().converged);
}

TEST_F(BatchSolver, EmptyBatchIsANoOp)
{
    BatchMvaSolver batch;
    EXPECT_TRUE(batch.solveBatch({}).empty());
}

} // namespace
} // namespace snoop
