/**
 * Property tests for the MVA model: structural invariants that must
 * hold across the whole (sharing level, protocol, N) design space.
 */

#include <gtest/gtest.h>

#include "mva/solver.hh"

namespace snoop {
namespace {

class MvaSpace
    : public testing::TestWithParam<std::tuple<SharingLevel, unsigned>>
{
  protected:
    DerivedInputs
    inputs() const
    {
        auto [level, idx] = GetParam();
        return DerivedInputs::compute(presets::appendixA(level),
                                      ProtocolConfig::fromIndex(idx));
    }
};

TEST_P(MvaSpace, SpeedupIsBoundedByN)
{
    MvaSolver solver;
    auto d = inputs();
    for (unsigned n : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 55u, 144u}) {
        auto r = solver.solve(d, n);
        EXPECT_TRUE(r.converged);
        EXPECT_GT(r.speedup, 0.0);
        EXPECT_LE(r.speedup, static_cast<double>(n) + 1e-9);
    }
}

TEST_P(MvaSpace, SpeedupApproximatelyMonotoneInN)
{
    // Speedup grows with N up to the bus knee and may decline very
    // slightly past it (the paper's own Table 4.1(b) shows 7.09 at
    // N=20 vs 7.04 at N=100), so we allow a 2% sag but no more.
    MvaSolver solver;
    auto d = inputs();
    double prev = 0.0;
    for (unsigned n = 1; n <= 64; n *= 2) {
        double s = solver.solve(d, n).speedup;
        EXPECT_GE(s, prev * 0.98) << "N=" << n;
        prev = s;
    }
}

TEST_P(MvaSpace, UtilizationsAreProbabilities)
{
    MvaSolver solver;
    auto d = inputs();
    for (unsigned n : {1u, 4u, 16u, 64u, 256u}) {
        auto r = solver.solve(d, n);
        EXPECT_GE(r.busUtil, 0.0);
        EXPECT_LE(r.busUtil, 1.0 + 1e-9);
        EXPECT_GE(r.memUtil, 0.0);
        EXPECT_LE(r.memUtil, 1.0 + 1e-9);
        EXPECT_GE(r.pBusyBus, 0.0);
        EXPECT_LE(r.pBusyBus, 1.0 + 1e-9);
        EXPECT_GE(r.pBusyMem, 0.0);
        EXPECT_LE(r.pBusyMem, 1.0 + 1e-9);
    }
}

TEST_P(MvaSpace, WaitingTimesNonNegativeAndGrowWithLoad)
{
    MvaSolver solver;
    auto d = inputs();
    double prev_wbus = -1.0;
    for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u}) {
        auto r = solver.solve(d, n);
        EXPECT_GE(r.wBus, 0.0);
        EXPECT_GE(r.wMem, 0.0);
        EXPECT_GE(r.qBus, 0.0);
        EXPECT_GE(r.wBus, prev_wbus - 1e-6) << "N=" << n;
        prev_wbus = r.wBus;
    }
}

TEST_P(MvaSpace, ResponseTimeDecomposesExactly)
{
    MvaSolver solver;
    auto d = inputs();
    for (unsigned n : {1u, 6u, 20u}) {
        auto r = solver.solve(d, n);
        // eq. (1): R = tau + R_local + R_broadcast + R_RemoteRead +
        // T_supply, evaluated at the fixed point.
        EXPECT_NEAR(r.responseTime,
                    d.tau + r.rLocal + r.rBroadcast + r.rRemoteRead +
                        d.timing.tSupply,
                    1e-6);
    }
}

TEST_P(MvaSpace, SaturationThroughputMatchesBusDemand)
{
    // As N grows the bus saturates and speedup approaches
    // (tau + T_supply) / D where D is the per-request bus demand.
    MvaSolver solver;
    auto d = inputs();
    auto big = solver.solve(d, 4096);
    double demand = d.pBc * (big.wMem + d.timing.tWrite) +
        d.pRr * d.tRead;
    if (demand <= 0.0)
        return; // all-local workloads never saturate
    double limit = (d.tau + d.timing.tSupply) / demand;
    EXPECT_NEAR(big.speedup, limit, limit * 0.02);
    EXPECT_GT(big.busUtil, 0.98);
}

TEST_P(MvaSpace, InterferenceVanishesAtOneProcessor)
{
    MvaSolver solver;
    auto r = solver.solve(inputs(), 1);
    EXPECT_DOUBLE_EQ(r.nInterference, 0.0);
    EXPECT_DOUBLE_EQ(r.rLocal, 0.0);
    EXPECT_DOUBLE_EQ(r.wBus, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllLevelsAllMods, MvaSpace,
    testing::Combine(testing::ValuesIn(kSharingLevels),
                     testing::Range(0u, 16u)));

// ---------------------------------------------------------------------
// Sensitivity properties on individual parameters
// ---------------------------------------------------------------------

TEST(MvaSensitivity, LongerThinkTimeReducesContention)
{
    MvaSolver solver;
    WorkloadParams p = presets::appendixA(SharingLevel::FivePercent);
    auto base = solver.solve(p, ProtocolConfig::writeOnce(), 10);
    p.tau = 10.0;
    auto slow = solver.solve(p, ProtocolConfig::writeOnce(), 10);
    EXPECT_LT(slow.busUtil, base.busUtil);
    EXPECT_LT(slow.wBus, base.wBus);
    EXPECT_GT(slow.speedup, base.speedup);
}

TEST(MvaSensitivity, LowerHitRateIncreasesBusLoad)
{
    MvaSolver solver;
    WorkloadParams p = presets::appendixA(SharingLevel::FivePercent);
    auto base = solver.solve(p, ProtocolConfig::writeOnce(), 10);
    p.hPrivate = 0.80;
    auto missy = solver.solve(p, ProtocolConfig::writeOnce(), 10);
    EXPECT_GT(missy.busUtil, base.busUtil);
    EXPECT_LT(missy.speedup, base.speedup);
}

TEST(MvaSensitivity, HigherReplacementTrafficHurts)
{
    MvaSolver solver;
    WorkloadParams p = presets::appendixA(SharingLevel::FivePercent);
    auto base = solver.solve(p, ProtocolConfig::writeOnce(), 10);
    p.repP = 0.8;
    auto heavy = solver.solve(p, ProtocolConfig::writeOnce(), 10);
    EXPECT_LT(heavy.speedup, base.speedup);
}

TEST(MvaSensitivity, StressWorkloadStillWithinModelDomain)
{
    // Section 4.3 stress parameters must solve cleanly.
    MvaSolver solver;
    auto d = DerivedInputs::compute(presets::stressTest(),
                                    ProtocolConfig::writeOnce());
    for (unsigned n : {1u, 4u, 10u, 50u}) {
        auto r = solver.solve(d, n);
        EXPECT_TRUE(r.converged);
        EXPECT_GT(r.speedup, 0.0);
        EXPECT_LE(r.speedup, static_cast<double>(n));
    }
}

TEST(MvaSensitivity, MemoryInterferenceRespondsToModuleCount)
{
    MvaSolver solver;
    auto p = presets::appendixA(SharingLevel::TwentyPercent);
    BusTiming one_module;
    one_module.numModules = 1;
    auto few = solver.solve(p, ProtocolConfig::writeOnce(), 10, one_module);
    auto many = solver.solve(p, ProtocolConfig::writeOnce(), 10);
    EXPECT_GT(few.memUtil, many.memUtil);
    EXPECT_GE(few.wMem, many.wMem);
}

TEST(MvaSensitivity, DampedSolverAgreesWithUndamped)
{
    MvaOptions damped;
    damped.damping = 0.5;
    MvaSolver a((MvaOptions()));
    MvaSolver b(damped);
    auto d = DerivedInputs::compute(
        presets::appendixA(SharingLevel::TwentyPercent),
        ProtocolConfig::fromModString("1"));
    for (unsigned n : {2u, 10u, 100u}) {
        EXPECT_NEAR(a.solve(d, n).speedup, b.solve(d, n).speedup, 1e-6);
    }
}

} // namespace
} // namespace snoop
