/** Unit tests for CTMC stationary and transient analysis. */

#include <cmath>

#include <gtest/gtest.h>

#include "markov/ctmc.hh"

namespace snoop {
namespace {

/** Two-state chain 0 <-> 1 with rates a (0->1) and b (1->0). */
Ctmc
twoState(double a, double b)
{
    Ctmc c(2);
    c.addRate(0, 1, a);
    c.addRate(1, 0, b);
    return c;
}

TEST(Ctmc, TwoStateStationaryClosedForm)
{
    auto c = twoState(2.0, 3.0);
    auto pi = c.stationary();
    EXPECT_NEAR(pi[0], 0.6, 1e-12);
    EXPECT_NEAR(pi[1], 0.4, 1e-12);
}

TEST(Ctmc, TwoStateTransientClosedForm)
{
    // From state 0: p1(t) = a/(a+b) (1 - e^{-(a+b) t}).
    double a = 2.0, b = 3.0;
    auto c = twoState(a, b);
    for (double t : {0.0, 0.1, 0.5, 1.0, 3.0}) {
        auto p = c.transient({1.0, 0.0}, t);
        double expected =
            a / (a + b) * (1.0 - std::exp(-(a + b) * t));
        EXPECT_NEAR(p[1], expected, 1e-9) << "t=" << t;
        EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
    }
}

TEST(Ctmc, TransientConvergesToStationary)
{
    Ctmc c(3);
    c.addRate(0, 1, 1.0);
    c.addRate(1, 2, 2.0);
    c.addRate(2, 0, 0.5);
    c.addRate(1, 0, 0.3);
    auto pi = c.stationary();
    auto p = c.transient({1.0, 0.0, 0.0}, 200.0);
    for (size_t s = 0; s < 3; ++s)
        EXPECT_NEAR(p[s], pi[s], 1e-8) << "state " << s;
}

TEST(Ctmc, TransientAtZeroIsInitial)
{
    auto c = twoState(1.0, 1.0);
    auto p = c.transient({0.25, 0.75}, 0.0);
    EXPECT_DOUBLE_EQ(p[0], 0.25);
    EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(Ctmc, ErlangBirthDeathStationary)
{
    // M/M/1/3 queue: arrivals 1.0, service 2.0, states 0..3.
    // pi_j proportional to rho^j with rho = 0.5.
    Ctmc c(4);
    for (size_t j = 0; j < 3; ++j) {
        c.addRate(j, j + 1, 1.0);
        c.addRate(j + 1, j, 2.0);
    }
    auto pi = c.stationary();
    double rho = 0.5;
    double norm = 1.0 + rho + rho * rho + rho * rho * rho;
    for (size_t j = 0; j < 4; ++j)
        EXPECT_NEAR(pi[j], std::pow(rho, double(j)) / norm, 1e-12);
}

TEST(Ctmc, MixingTimeScalesWithSlowestRate)
{
    // Slower chains take longer to forget the initial state.
    auto fast = twoState(4.0, 4.0);
    auto slow = twoState(0.25, 0.25);
    double tf = fast.mixingTime({1.0, 0.0}, 0.05, 200.0);
    double ts = slow.mixingTime({1.0, 0.0}, 0.05, 200.0);
    ASSERT_GT(tf, 0.0);
    ASSERT_GT(ts, 0.0);
    EXPECT_GT(ts, 4.0 * tf);
}

TEST(Ctmc, MixingTimeUnreachedReturnsMinusOne)
{
    auto slow = twoState(0.001, 0.001);
    EXPECT_DOUBLE_EQ(slow.mixingTime({1.0, 0.0}, 0.5, 2.0), -1.0);
}

TEST(Ctmc, ExitRatesAccumulate)
{
    Ctmc c(3);
    c.addRate(0, 1, 1.5);
    c.addRate(0, 2, 2.5);
    EXPECT_DOUBLE_EQ(c.exitRate(0), 4.0);
    EXPECT_DOUBLE_EQ(c.exitRate(1), 0.0);
}

TEST(CtmcDeath, BadConstruction)
{
    EXPECT_EXIT(Ctmc(0), testing::ExitedWithCode(1), "at least one");
    Ctmc c(2);
    EXPECT_EXIT(c.addRate(0, 0, 1.0), testing::ExitedWithCode(1),
                "self-loop");
    EXPECT_EXIT(c.addRate(0, 1, -1.0), testing::ExitedWithCode(1),
                "positive");
    EXPECT_EXIT(c.addRate(2, 0, 1.0), testing::ExitedWithCode(1),
                "out of range");
}

TEST(CtmcDeath, BadAnalysisArguments)
{
    auto c = twoState(1.0, 1.0);
    EXPECT_EXIT(c.transient({1.0}, 1.0), testing::ExitedWithCode(1),
                "entries");
    EXPECT_EXIT(c.transient({0.5, 0.4}, 1.0),
                testing::ExitedWithCode(1), "sums to");
    EXPECT_EXIT(c.transient({1.0, 0.0}, -1.0),
                testing::ExitedWithCode(1), "negative time");
    EXPECT_EXIT(c.mixingTime({1.0, 0.0}, 0.0, 1.0),
                testing::ExitedWithCode(1), "step");
    Ctmc absorbing(2);
    absorbing.addRate(0, 1, 1.0);
    EXPECT_EXIT(absorbing.stationary(), testing::ExitedWithCode(1),
                "absorbing");
}

} // namespace
} // namespace snoop
