/** Unit tests for DTMC steady-state solvers. */

#include <gtest/gtest.h>

#include "markov/dtmc.hh"

namespace snoop {
namespace {

Dtmc
twoState(double p01, double p10)
{
    Dtmc c(2);
    c.addTransition(0, 1, p01);
    c.addTransition(0, 0, 1.0 - p01);
    c.addTransition(1, 0, p10);
    c.addTransition(1, 1, 1.0 - p10);
    return c;
}

TEST(Dtmc, TwoStateClosedForm)
{
    // pi_0 = p10 / (p01 + p10)
    auto c = twoState(0.3, 0.6);
    auto pi = c.steadyStateGth();
    EXPECT_NEAR(pi[0], 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(pi[1], 1.0 / 3.0, 1e-12);
}

TEST(Dtmc, PowerMatchesGth)
{
    auto c = twoState(0.17, 0.45);
    auto gth = c.steadyStateGth();
    auto pow = c.steadyStatePower();
    ASSERT_EQ(gth.size(), pow.size());
    for (size_t s = 0; s < gth.size(); ++s)
        EXPECT_NEAR(gth[s], pow[s], 1e-9);
}

TEST(Dtmc, PeriodicChainHandledByPowerSmoothing)
{
    // Strict alternation 0 <-> 1 has period 2; the smoothed power
    // method must still find pi = (1/2, 1/2).
    Dtmc c(2);
    c.addTransition(0, 1, 1.0);
    c.addTransition(1, 0, 1.0);
    auto pi = c.steadyStatePower();
    EXPECT_NEAR(pi[0], 0.5, 1e-9);
    EXPECT_NEAR(pi[1], 0.5, 1e-9);
}

TEST(Dtmc, BirthDeathChain)
{
    // Random walk on {0,1,2} with reflecting ends, p=0.4 up, 0.6 down.
    Dtmc c(3);
    c.addTransition(0, 1, 0.4);
    c.addTransition(0, 0, 0.6);
    c.addTransition(1, 2, 0.4);
    c.addTransition(1, 0, 0.6);
    c.addTransition(2, 1, 0.6);
    c.addTransition(2, 2, 0.4);
    auto pi = c.steadyStateGth();
    // detailed balance: pi1/pi0 = 0.4/0.6, pi2/pi1 = 0.4/0.6
    EXPECT_NEAR(pi[1] / pi[0], 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(pi[2] / pi[1], 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(pi[0] + pi[1] + pi[2], 1.0, 1e-12);
}

TEST(Dtmc, UniformChain)
{
    const size_t n = 7;
    Dtmc c(n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            c.addTransition(i, j, 1.0 / n);
    auto pi = c.steadyStateGth();
    for (size_t s = 0; s < n; ++s)
        EXPECT_NEAR(pi[s], 1.0 / n, 1e-12);
}

TEST(Dtmc, LargerCyclicChainGth)
{
    // Deterministic cycle of 50 states: uniform stationary vector.
    const size_t n = 50;
    Dtmc c(n);
    for (size_t i = 0; i < n; ++i)
        c.addTransition(i, (i + 1) % n, 1.0);
    auto pi = c.steadyStateGth();
    for (size_t s = 0; s < n; ++s)
        EXPECT_NEAR(pi[s], 1.0 / n, 1e-10);
}

TEST(Dtmc, DuplicateTransitionsAccumulate)
{
    Dtmc c(2);
    c.addTransition(0, 1, 0.25);
    c.addTransition(0, 1, 0.25);
    c.addTransition(0, 0, 0.5);
    c.addTransition(1, 0, 1.0);
    c.validate(); // rows must still sum to 1
    auto pi = c.steadyStateGth();
    EXPECT_NEAR(pi[0], 2.0 / 3.0, 1e-12);
}

TEST(DtmcDeath, BadConstruction)
{
    EXPECT_EXIT(Dtmc(0), testing::ExitedWithCode(1), "at least one");
    Dtmc c(2);
    EXPECT_EXIT(c.addTransition(2, 0, 0.5), testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(c.addTransition(0, 0, 1.5), testing::ExitedWithCode(1),
                "bad probability");
}

TEST(DtmcDeath, RowSumValidation)
{
    Dtmc c(2);
    c.addTransition(0, 1, 0.5);
    c.addTransition(1, 0, 1.0);
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1), "sums to");
}

TEST(DtmcDeath, ReducibleChainDetectedByGth)
{
    // State 1 is absorbing-from-0 unreachable-back: two closed classes.
    Dtmc c(2);
    c.addTransition(0, 0, 1.0);
    c.addTransition(1, 1, 1.0);
    EXPECT_EXIT(c.steadyStateGth(), testing::ExitedWithCode(1),
                "zero pivot");
}

} // namespace
} // namespace snoop
