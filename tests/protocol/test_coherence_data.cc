/**
 * Data-value coherence property test: drive N caches plus main memory
 * through random access sequences under every protocol configuration,
 * tracking an abstract "version" for the block in every location, and
 * assert that every read observes the value of the most recent write
 * (the fundamental correctness property behind all of Section 2.2's
 * state machinery).
 *
 * Version bookkeeping follows the protocol semantics:
 *  - a processor write creates a new version in the writing cache;
 *  - write-through / broadcast writes propagate the version to memory
 *    (unless mod3 suppressed the memory update) and to updating peers
 *    (mod4);
 *  - a dirty holder flushing on a snoop refreshes memory;
 *  - a mod2 supplier hands the version straight to the requester;
 *  - evicting a dirty line writes its version back to memory.
 */

#include <vector>

#include <gtest/gtest.h>

#include "protocol/fsm.hh"
#include "random/rng.hh"

namespace snoop {
namespace {

class DataCoherenceModel
{
  public:
    DataCoherenceModel(unsigned caches, const ProtocolConfig &cfg)
        : cfg_(cfg), state_(caches, LineState::Invalid),
          version_(caches, 0)
    {
    }

    /** Perform one access and check read values. */
    void
    access(unsigned cache, bool is_write)
    {
        LineState s = state_[cache];
        ProcAction a = is_write ? onProcessorWrite(s, cfg_)
                                : onProcessorRead(s, cfg_);
        if (a.busOp == BusOp::None) {
            // local hit
            ASSERT_NE(s, LineState::Invalid);
            checkRead(cache);
            if (is_write)
                version_[cache] = ++latest_;
            state_[cache] = a.next;
            return;
        }

        switch (a.busOp) {
          case BusOp::Read:
          case BusOp::ReadMod:
            serveMiss(cache, is_write, a.busOp);
            return;
          case BusOp::WriteWord:
          case BusOp::Invalidate:
            serveBroadcast(cache, a);
            return;
          default:
            FAIL() << "unexpected bus op";
        }
    }

    /** Evict the block from a cache (replacement). */
    void
    evict(unsigned cache)
    {
        if (state_[cache] == LineState::Invalid)
            return;
        if (isDirty(state_[cache]))
            memory_ = version_[cache];
        state_[cache] = LineState::Invalid;
    }

  private:
    void
    checkRead(unsigned cache)
    {
        // a valid copy must hold the latest committed version
        ASSERT_EQ(version_[cache], latest_)
            << "cache " << cache << " in " << to_string(state_[cache])
            << " reads a stale version under "
            << cfg_.name();
    }

    void
    serveMiss(unsigned requester, bool is_write, BusOp op)
    {
        bool other_copies = false;
        uint64_t supplied = memory_;
        for (unsigned c = 0; c < state_.size(); ++c) {
            if (c == requester || state_[c] == LineState::Invalid)
                continue;
            other_copies = true;
            SnoopAction sa = onSnoop(state_[c], op, cfg_);
            if (sa.flushesToMemory) {
                memory_ = version_[c];
                supplied = memory_;
            }
            if (sa.suppliesData)
                supplied = version_[c];
            state_[c] = sa.next;
        }
        if (!other_copies)
            supplied = memory_;
        state_[requester] = fillState(is_write, other_copies, cfg_);
        version_[requester] = supplied;
        checkRead(requester);
        if (is_write)
            version_[requester] = ++latest_;
    }

    void
    serveBroadcast(unsigned writer, const ProcAction &a)
    {
        checkRead(writer);
        version_[writer] = ++latest_;
        for (unsigned c = 0; c < state_.size(); ++c) {
            if (c == writer || state_[c] == LineState::Invalid)
                continue;
            SnoopAction sa = onSnoop(state_[c], a.busOp, cfg_);
            if (sa.next != LineState::Invalid &&
                a.busOp == BusOp::WriteWord) {
                // broadcast-update peers take the new value
                version_[c] = version_[writer];
            }
            state_[c] = sa.next;
        }
        if (a.updatesMemory)
            memory_ = version_[writer];
        state_[writer] = a.next;
    }

    ProtocolConfig cfg_;
    std::vector<LineState> state_;
    std::vector<uint64_t> version_;
    uint64_t memory_ = 0;
    uint64_t latest_ = 0;
};

class DataCoherence : public testing::TestWithParam<unsigned>
{
};

TEST_P(DataCoherence, ReadsAlwaysObserveTheLatestWrite)
{
    auto cfg = ProtocolConfig::fromIndex(GetParam());
    Rng rng(9000 + GetParam());
    const unsigned caches = 4;
    DataCoherenceModel model(caches, cfg);
    for (int step = 0; step < 30000; ++step) {
        unsigned cache = static_cast<unsigned>(rng.uniformInt(caches));
        double u = rng.uniform();
        if (u < 0.04)
            model.evict(cache);
        else
            model.access(cache, rng.bernoulli(0.45));
        if (testing::Test::HasFatalFailure())
            return;
    }
}

INSTANTIATE_TEST_SUITE_P(AllModCombinations, DataCoherence,
                         testing::Range(0u, 16u));

} // namespace
} // namespace snoop
