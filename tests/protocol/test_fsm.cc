/** Unit and property tests for the snooping line-state machine. */

#include <vector>

#include <gtest/gtest.h>

#include "protocol/catalog.hh"
#include "protocol/fsm.hh"
#include "random/rng.hh"

namespace snoop {
namespace {

const ProtocolConfig kWriteOnce = ProtocolConfig::writeOnce();

TEST(LineState, BitPredicates)
{
    EXPECT_FALSE(isValid(LineState::Invalid));
    EXPECT_TRUE(isValid(LineState::SharedClean));
    EXPECT_TRUE(isExclusive(LineState::ExclusiveClean));
    EXPECT_TRUE(isExclusive(LineState::ExclusiveDirty));
    EXPECT_FALSE(isExclusive(LineState::SharedDirty));
    EXPECT_TRUE(isDirty(LineState::ExclusiveDirty));
    EXPECT_TRUE(isDirty(LineState::SharedDirty));
    EXPECT_FALSE(isDirty(LineState::SharedClean));
}

TEST(LineState, Names)
{
    EXPECT_EQ(to_string(LineState::Invalid), "I");
    EXPECT_EQ(to_string(LineState::SharedClean), "SC");
    EXPECT_EQ(to_string(LineState::ExclusiveClean), "EC");
    EXPECT_EQ(to_string(LineState::ExclusiveDirty), "ED");
    EXPECT_EQ(to_string(LineState::SharedDirty), "SD");
}

TEST(BusOp, Names)
{
    EXPECT_EQ(to_string(BusOp::Read), "Read");
    EXPECT_EQ(to_string(BusOp::ReadMod), "ReadMod");
    EXPECT_EQ(to_string(BusOp::Invalidate), "Invalidate");
    EXPECT_EQ(to_string(BusOp::WriteWord), "WriteWord");
    EXPECT_EQ(to_string(BusOp::WriteBlock), "WriteBlock");
    EXPECT_EQ(to_string(BusOp::None), "None");
}

// ---------------------------------------------------------------------
// Processor-side transitions, Write-Once (Section 2.2 review)
// ---------------------------------------------------------------------

TEST(WriteOnceProc, ReadMissIssuesBusRead)
{
    auto a = onProcessorRead(LineState::Invalid, kWriteOnce);
    EXPECT_EQ(a.busOp, BusOp::Read);
}

TEST(WriteOnceProc, ReadHitsAreLocalAndStatePreserving)
{
    for (auto s : {LineState::SharedClean, LineState::ExclusiveClean,
                   LineState::ExclusiveDirty, LineState::SharedDirty}) {
        auto a = onProcessorRead(s, kWriteOnce);
        EXPECT_EQ(a.busOp, BusOp::None);
        EXPECT_EQ(a.next, s);
    }
}

TEST(WriteOnceProc, WriteMissIssuesReadModAndLoadsExclusiveDirty)
{
    auto a = onProcessorWrite(LineState::Invalid, kWriteOnce);
    EXPECT_EQ(a.busOp, BusOp::ReadMod);
    EXPECT_EQ(a.next, LineState::ExclusiveDirty);
}

TEST(WriteOnceProc, FirstWriteToSharedWritesThrough)
{
    // "the first time a processor writes a word to a non-exclusive
    // block in its cache, the word is written through to main memory.
    // ... The write operation changes the state of the block to
    // exclusive and no-wback."
    auto a = onProcessorWrite(LineState::SharedClean, kWriteOnce);
    EXPECT_EQ(a.busOp, BusOp::WriteWord);
    EXPECT_TRUE(a.updatesMemory);
    EXPECT_EQ(a.next, LineState::ExclusiveClean);
}

TEST(WriteOnceProc, SecondWriteIsLocalAndDirties)
{
    // "Writes to a block in state exclusive are written only locally,
    // changing the state to wback."
    auto a = onProcessorWrite(LineState::ExclusiveClean, kWriteOnce);
    EXPECT_EQ(a.busOp, BusOp::None);
    EXPECT_EQ(a.next, LineState::ExclusiveDirty);
    auto b = onProcessorWrite(LineState::ExclusiveDirty, kWriteOnce);
    EXPECT_EQ(b.busOp, BusOp::None);
    EXPECT_EQ(b.next, LineState::ExclusiveDirty);
}

// ---------------------------------------------------------------------
// Fill states
// ---------------------------------------------------------------------

TEST(Fill, WriteOnceLoadsSharedOnRead)
{
    EXPECT_EQ(fillState(false, true, kWriteOnce), LineState::SharedClean);
    // without mod1, even a sole copy loads non-exclusive
    EXPECT_EQ(fillState(false, false, kWriteOnce), LineState::SharedClean);
}

TEST(Fill, Mod1LoadsExclusiveWhenSharedLineLow)
{
    auto m1 = ProtocolConfig::fromModString("1");
    EXPECT_EQ(fillState(false, false, m1), LineState::ExclusiveClean);
    EXPECT_EQ(fillState(false, true, m1), LineState::SharedClean);
}

TEST(Fill, ReadModAlwaysLoadsExclusiveDirty)
{
    for (unsigned idx = 0; idx < 16; ++idx) {
        auto cfg = ProtocolConfig::fromIndex(idx);
        EXPECT_EQ(fillState(true, true, cfg), LineState::ExclusiveDirty);
        EXPECT_EQ(fillState(true, false, cfg), LineState::ExclusiveDirty);
    }
}

// ---------------------------------------------------------------------
// Snoop-side transitions
// ---------------------------------------------------------------------

TEST(WriteOnceSnoop, DirtyHolderFlushesOnBusRead)
{
    // "a cache containing the block in state wback interrupts the bus
    // transaction and writes the block to main memory ... The state of
    // the block changes to no-wback if the bus request is of type read."
    auto a = onSnoop(LineState::ExclusiveDirty, BusOp::Read, kWriteOnce);
    EXPECT_TRUE(a.mustRespond);
    EXPECT_TRUE(a.fullDuration);
    EXPECT_TRUE(a.flushesToMemory);
    EXPECT_FALSE(a.suppliesData);
    EXPECT_EQ(a.next, LineState::SharedClean);
}

TEST(WriteOnceSnoop, CleanHolderSilentlyLosesExclusivity)
{
    auto a = onSnoop(LineState::ExclusiveClean, BusOp::Read, kWriteOnce);
    EXPECT_FALSE(a.mustRespond);
    EXPECT_EQ(a.next, LineState::SharedClean);
}

TEST(WriteOnceSnoop, ReadModInvalidatesShortDurationWhenClean)
{
    // Section 3.1: "a read-mod operation where the cache has the block
    // in state no-wback ... invalidating the block ... is of shorter
    // duration than the bus transaction."
    auto a = onSnoop(LineState::SharedClean, BusOp::ReadMod, kWriteOnce);
    EXPECT_TRUE(a.mustRespond);
    EXPECT_FALSE(a.fullDuration);
    EXPECT_EQ(a.next, LineState::Invalid);
}

TEST(WriteOnceSnoop, ReadModOnDirtyFlushesThenInvalidates)
{
    auto a = onSnoop(LineState::ExclusiveDirty, BusOp::ReadMod, kWriteOnce);
    EXPECT_TRUE(a.fullDuration);
    EXPECT_TRUE(a.flushesToMemory);
    EXPECT_EQ(a.next, LineState::Invalid);
}

TEST(WriteOnceSnoop, WriteWordInvalidatesObservers)
{
    // "When the word is broadcast on the bus, any cache containing the
    // block invalidates its copy."
    auto a = onSnoop(LineState::SharedClean, BusOp::WriteWord, kWriteOnce);
    EXPECT_TRUE(a.mustRespond);
    EXPECT_FALSE(a.fullDuration);
    EXPECT_EQ(a.next, LineState::Invalid);
}

TEST(WriteOnceSnoop, WriteBlockNeedsNoAction)
{
    auto a = onSnoop(LineState::SharedClean, BusOp::WriteBlock, kWriteOnce);
    EXPECT_FALSE(a.mustRespond);
    EXPECT_EQ(a.next, LineState::SharedClean);
}

TEST(Mod2Snoop, DirtyHolderSuppliesDirectlyAndKeepsOwnership)
{
    auto berkeley = *findProtocol("Berkeley");
    auto a = onSnoop(LineState::ExclusiveDirty, BusOp::Read, berkeley);
    EXPECT_TRUE(a.suppliesData);
    EXPECT_FALSE(a.flushesToMemory);
    EXPECT_EQ(a.next, LineState::SharedDirty);
}

TEST(Mod2Snoop, OwnerSuppliesOnReadMod)
{
    auto berkeley = *findProtocol("Berkeley");
    auto a = onSnoop(LineState::SharedDirty, BusOp::ReadMod, berkeley);
    EXPECT_TRUE(a.suppliesData);
    EXPECT_EQ(a.next, LineState::Invalid);
}

TEST(Mod3Proc, FirstWriteInvalidatesInsteadOfWriteWord)
{
    auto m3 = ProtocolConfig::fromModString("3");
    auto a = onProcessorWrite(LineState::SharedClean, m3);
    EXPECT_EQ(a.busOp, BusOp::Invalidate);
    EXPECT_FALSE(a.updatesMemory);
    EXPECT_EQ(a.next, LineState::ExclusiveDirty);
}

TEST(Mod4Proc, BroadcastKeepsCopiesValid)
{
    auto m4 = ProtocolConfig::fromModString("4");
    auto a = onProcessorWrite(LineState::SharedClean, m4);
    EXPECT_EQ(a.busOp, BusOp::WriteWord);
    EXPECT_TRUE(a.updatesMemory);
    EXPECT_EQ(a.next, LineState::SharedClean);
}

TEST(Mod4Snoop, ObserversUpdateInsteadOfInvalidate)
{
    auto m4 = ProtocolConfig::fromModString("4");
    auto a = onSnoop(LineState::SharedClean, BusOp::WriteWord, m4);
    EXPECT_TRUE(a.mustRespond);
    EXPECT_TRUE(a.fullDuration);
    EXPECT_EQ(a.next, LineState::SharedClean);
}

TEST(Mod34Proc, BroadcasterTakesOwnership)
{
    auto m34 = ProtocolConfig::fromModString("34");
    auto a = onProcessorWrite(LineState::SharedClean, m34);
    EXPECT_EQ(a.busOp, BusOp::WriteWord);
    EXPECT_FALSE(a.updatesMemory);
    EXPECT_EQ(a.next, LineState::SharedDirty);
}

TEST(Mod34Snoop, PreviousOwnerCedesOwnership)
{
    auto m34 = ProtocolConfig::fromModString("34");
    auto a = onSnoop(LineState::SharedDirty, BusOp::WriteWord, m34);
    EXPECT_EQ(a.next, LineState::SharedClean);
}

TEST(Eviction, OnlyDirtyStatesWriteBack)
{
    EXPECT_EQ(evictionOp(LineState::SharedClean), BusOp::None);
    EXPECT_EQ(evictionOp(LineState::ExclusiveClean), BusOp::None);
    EXPECT_EQ(evictionOp(LineState::ExclusiveDirty), BusOp::WriteBlock);
    EXPECT_EQ(evictionOp(LineState::SharedDirty), BusOp::WriteBlock);
    EXPECT_EQ(evictionOp(LineState::Invalid), BusOp::None);
}

TEST(SnoopDeath, SnoopOnInvalidPanics)
{
    EXPECT_DEATH(onSnoop(LineState::Invalid, BusOp::Read, kWriteOnce),
                 "dual directory");
}

// ---------------------------------------------------------------------
// Multi-cache coherence property test: drive N simulated caches with
// random accesses, applying bus semantics atomically, and check the
// system-level invariants for every protocol configuration.
// ---------------------------------------------------------------------

class CoherenceModel
{
  public:
    CoherenceModel(unsigned caches, const ProtocolConfig &cfg)
        : cfg_(cfg), state_(caches, LineState::Invalid)
    {
    }

    void
    access(unsigned cache, bool is_write)
    {
        LineState s = state_[cache];
        ProcAction a = is_write ? onProcessorWrite(s, cfg_)
                                : onProcessorRead(s, cfg_);
        if (a.busOp == BusOp::None) {
            state_[cache] = a.next;
            return;
        }
        // Snoop every other valid holder.
        bool other_copies = false;
        for (unsigned i = 0; i < state_.size(); ++i) {
            if (i == cache || state_[i] == LineState::Invalid)
                continue;
            other_copies = true;
            state_[i] = onSnoop(state_[i], a.busOp, cfg_).next;
        }
        if (a.busOp == BusOp::Read || a.busOp == BusOp::ReadMod)
            state_[cache] = fillState(is_write, other_copies, cfg_);
        else
            state_[cache] = a.next;
    }

    void
    evict(unsigned cache)
    {
        state_[cache] = LineState::Invalid;
    }

    void
    checkInvariants() const
    {
        unsigned valid = 0, dirty = 0, exclusive = 0;
        for (auto s : state_) {
            valid += isValid(s);
            dirty += isDirty(s);
            exclusive += isExclusive(s);
        }
        // At most one dirty copy (single write-back responsibility).
        ASSERT_LE(dirty, 1u);
        // An exclusive holder excludes all other copies.
        if (exclusive > 0) {
            ASSERT_EQ(exclusive, 1u);
            ASSERT_EQ(valid, 1u);
        }
    }

  private:
    ProtocolConfig cfg_;
    std::vector<LineState> state_;
};

class FsmProperty : public testing::TestWithParam<unsigned>
{
};

TEST_P(FsmProperty, InvariantsHoldUnderRandomAccessSequences)
{
    auto cfg = ProtocolConfig::fromIndex(GetParam());
    Rng rng(1000 + GetParam());
    const unsigned caches = 5;
    CoherenceModel model(caches, cfg);
    for (int step = 0; step < 20000; ++step) {
        unsigned cache = static_cast<unsigned>(rng.uniformInt(caches));
        double u = rng.uniform();
        if (u < 0.05)
            model.evict(cache);
        else
            model.access(cache, rng.bernoulli(0.4));
        model.checkInvariants();
    }
}

INSTANTIATE_TEST_SUITE_P(AllModCombinations, FsmProperty,
                         testing::Range(0u, 16u));

} // namespace
} // namespace snoop
