/** Unit tests for protocol/catalog. */

#include <gtest/gtest.h>

#include "protocol/catalog.hh"

namespace snoop {
namespace {

TEST(Catalog, ContainsAllSevenProtocols)
{
    const auto &cat = protocolCatalog();
    EXPECT_EQ(cat.size(), 7u);
}

TEST(Catalog, Section22ModMemberships)
{
    // "Modification 1 is included in the Illinois, Dragon, and RWB
    // protocols."
    for (const char *name : {"Illinois", "Dragon", "RWB"})
        EXPECT_TRUE(findProtocol(name)->mod1) << name;
    for (const char *name : {"WriteOnce", "Synapse", "Berkeley"})
        EXPECT_FALSE(findProtocol(name)->mod1) << name;

    // "Modification 2 is included in the Berkeley and Dragon protocols."
    for (const char *name : {"Berkeley", "Dragon"})
        EXPECT_TRUE(findProtocol(name)->mod2) << name;
    for (const char *name : {"WriteOnce", "Synapse", "Illinois", "RWB"})
        EXPECT_FALSE(findProtocol(name)->mod2) << name;

    // "Modification 3 is included in all five protocols proposed as
    // improvements to Write-Once."
    for (const char *name :
         {"Synapse", "Illinois", "Berkeley", "Dragon", "RWB"})
        EXPECT_TRUE(findProtocol(name)->mod3) << name;
    EXPECT_FALSE(findProtocol("WriteOnce")->mod3);

    // "Modification 4 is included in the RWB and Dragon protocols."
    for (const char *name : {"RWB", "Dragon"})
        EXPECT_TRUE(findProtocol(name)->mod4) << name;
    for (const char *name :
         {"WriteOnce", "Synapse", "Illinois", "Berkeley"})
        EXPECT_FALSE(findProtocol(name)->mod4) << name;
}

TEST(Catalog, LookupIsCaseAndPunctuationInsensitive)
{
    EXPECT_TRUE(findProtocol("illinois").has_value());
    EXPECT_TRUE(findProtocol("ILLINOIS").has_value());
    EXPECT_TRUE(findProtocol("Write-Once").has_value());
    EXPECT_TRUE(findProtocol("write_once").has_value());
    EXPECT_TRUE(findProtocol(" dragon ").has_value());
}

TEST(Catalog, LookupAcceptsModStrings)
{
    auto c = findProtocol("13");
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c, ProtocolConfig::fromModString("13"));
}

TEST(Catalog, UnknownNameReturnsNullopt)
{
    EXPECT_FALSE(findProtocol("firefly").has_value());
    EXPECT_FALSE(findProtocol("").has_value());
    EXPECT_FALSE(findProtocol("15").has_value());
}

TEST(Catalog, NamesForConfigFindsIllinois)
{
    auto names = namesForConfig(ProtocolConfig::fromModString("13"));
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "Illinois");
}

TEST(Catalog, NamesForUnlistedConfigIsEmpty)
{
    EXPECT_TRUE(namesForConfig(ProtocolConfig::fromModString("12")).empty());
}

TEST(Catalog, WriteThroughIsMod4Alone)
{
    auto c = findProtocol("writethrough");
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c, ProtocolConfig::fromModString("4"));
}

} // namespace
} // namespace snoop
