/** Unit tests for protocol/config. */

#include <gtest/gtest.h>

#include "protocol/config.hh"

namespace snoop {
namespace {

TEST(ProtocolConfig, WriteOnceHasNoMods)
{
    auto c = ProtocolConfig::writeOnce();
    EXPECT_FALSE(c.mod1);
    EXPECT_FALSE(c.mod2);
    EXPECT_FALSE(c.mod3);
    EXPECT_FALSE(c.mod4);
    EXPECT_EQ(c.modString(), "");
    EXPECT_EQ(c.name(), "WriteOnce");
}

TEST(ProtocolConfig, FromModStringRoundTrips)
{
    for (unsigned idx = 0; idx < 16; ++idx) {
        auto c = ProtocolConfig::fromIndex(idx);
        EXPECT_EQ(ProtocolConfig::fromModString(c.modString()), c);
        EXPECT_EQ(c.index(), idx);
    }
}

TEST(ProtocolConfig, FromModStringOrderInsensitive)
{
    EXPECT_EQ(ProtocolConfig::fromModString("41"),
              ProtocolConfig::fromModString("14"));
}

TEST(ProtocolConfig, NameListsEnabledMods)
{
    EXPECT_EQ(ProtocolConfig::fromModString("134").name(),
              "WriteOnce+1+3+4");
}

TEST(ProtocolConfig, BroadcastMemorySemantics)
{
    // plain write-word updates memory
    EXPECT_TRUE(ProtocolConfig::writeOnce().broadcastUpdatesMemory());
    // mod3's invalidate does not
    EXPECT_FALSE(
        ProtocolConfig::fromModString("3").broadcastUpdatesMemory());
    // mod4 broadcast without mod3 updates memory
    EXPECT_TRUE(
        ProtocolConfig::fromModString("4").broadcastUpdatesMemory());
    // mod3+mod4: broadcast without update; broadcaster takes ownership
    auto c34 = ProtocolConfig::fromModString("34");
    EXPECT_FALSE(c34.broadcastUpdatesMemory());
    EXPECT_TRUE(c34.broadcasterTakesOwnership());
    EXPECT_FALSE(
        ProtocolConfig::fromModString("4").broadcasterTakesOwnership());
}

TEST(ProtocolConfigDeath, BadModCharacterIsFatal)
{
    EXPECT_EXIT(ProtocolConfig::fromModString("5"),
                testing::ExitedWithCode(1), "bad modification");
    EXPECT_EXIT(ProtocolConfig::fromModString("1a"),
                testing::ExitedWithCode(1), "bad modification");
}

TEST(ProtocolConfigDeath, FromIndexOutOfRangePanics)
{
    EXPECT_DEATH(ProtocolConfig::fromIndex(16), "out of range");
}

} // namespace
} // namespace snoop
