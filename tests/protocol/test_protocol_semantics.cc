/**
 * Scenario tests for each published protocol in the catalog: the
 * characteristic behavior that distinguishes it in Section 2.2,
 * played out through the state machine step by step.
 */

#include <gtest/gtest.h>

#include "protocol/catalog.hh"
#include "protocol/fsm.hh"

namespace snoop {
namespace {

TEST(WriteOnceSemantics, TheEponymousWriteOnceSequence)
{
    auto cfg = *findProtocol("WriteOnce");
    // Load by read: non-exclusive, clean.
    LineState s = fillState(false, true, cfg);
    EXPECT_EQ(s, LineState::SharedClean);
    // First write: write-through (the "write once"), block becomes
    // exclusive but memory is current -> no-wback.
    auto w1 = onProcessorWrite(s, cfg);
    EXPECT_EQ(w1.busOp, BusOp::WriteWord);
    EXPECT_TRUE(w1.updatesMemory);
    EXPECT_EQ(w1.next, LineState::ExclusiveClean);
    // Second write: purely local, block becomes dirty.
    auto w2 = onProcessorWrite(w1.next, cfg);
    EXPECT_EQ(w2.busOp, BusOp::None);
    EXPECT_EQ(w2.next, LineState::ExclusiveDirty);
    // Third write: still local.
    auto w3 = onProcessorWrite(w2.next, cfg);
    EXPECT_EQ(w3.busOp, BusOp::None);
    EXPECT_EQ(w3.next, LineState::ExclusiveDirty);
}

TEST(SynapseSemantics, InvalidatesInsteadOfWritingThrough)
{
    auto cfg = *findProtocol("Synapse");
    LineState s = fillState(false, true, cfg);
    EXPECT_EQ(s, LineState::SharedClean); // no mod1: never exclusive
    auto w1 = onProcessorWrite(s, cfg);
    EXPECT_EQ(w1.busOp, BusOp::Invalidate);
    EXPECT_FALSE(w1.updatesMemory);
    // the write stayed local, so the line is dirty immediately
    EXPECT_EQ(w1.next, LineState::ExclusiveDirty);
}

TEST(IllinoisSemantics, SoleCopyLoadsExclusiveAndWritesSilently)
{
    auto cfg = *findProtocol("Illinois");
    // Nobody raises the shared line: exclusive-clean load.
    LineState s = fillState(false, false, cfg);
    EXPECT_EQ(s, LineState::ExclusiveClean);
    // The first write needs no bus transaction at all.
    auto w = onProcessorWrite(s, cfg);
    EXPECT_EQ(w.busOp, BusOp::None);
    EXPECT_EQ(w.next, LineState::ExclusiveDirty);
    // With other copies present the load is shared and the first write
    // invalidates (mod3).
    LineState shared = fillState(false, true, cfg);
    EXPECT_EQ(shared, LineState::SharedClean);
    EXPECT_EQ(onProcessorWrite(shared, cfg).busOp, BusOp::Invalidate);
}

TEST(BerkeleySemantics, OwnershipTransferOnDirtySupply)
{
    auto cfg = *findProtocol("Berkeley");
    // A dirty holder snooping a read supplies the data directly,
    // keeps the line, and retains write-back responsibility
    // (ownership) - memory is NOT updated.
    auto snoop = onSnoop(LineState::ExclusiveDirty, BusOp::Read, cfg);
    EXPECT_TRUE(snoop.suppliesData);
    EXPECT_FALSE(snoop.flushesToMemory);
    EXPECT_EQ(snoop.next, LineState::SharedDirty);
    // The owner still writes the block back when evicted.
    EXPECT_EQ(evictionOp(snoop.next), BusOp::WriteBlock);
    // The requester's copy is clean (no write-back duty).
    EXPECT_EQ(fillState(false, true, cfg), LineState::SharedClean);
}

TEST(DragonSemantics, BroadcastUpdatesKeepAllCopiesValid)
{
    auto cfg = *findProtocol("Dragon");
    // A write hit on a shared line broadcasts the word...
    auto w = onProcessorWrite(LineState::SharedClean, cfg);
    EXPECT_EQ(w.busOp, BusOp::WriteWord);
    // ...observers update in place instead of invalidating...
    auto snoop = onSnoop(LineState::SharedClean, BusOp::WriteWord, cfg);
    EXPECT_NE(snoop.next, LineState::Invalid);
    EXPECT_TRUE(snoop.fullDuration); // they take the word
    // ...and Dragon also supplies dirty data directly (mod2).
    auto supply = onSnoop(LineState::ExclusiveDirty, BusOp::Read, cfg);
    EXPECT_TRUE(supply.suppliesData);
}

TEST(DragonSemantics, BroadcasterKeepsWritebackResponsibility)
{
    // Dragon has mods 3+4: broadcasts do not update memory, so the
    // broadcasting cache takes ownership (Section 2.2 "Summary").
    auto cfg = *findProtocol("Dragon");
    auto w = onProcessorWrite(LineState::SharedClean, cfg);
    EXPECT_FALSE(w.updatesMemory);
    EXPECT_EQ(w.next, LineState::SharedDirty);
    EXPECT_EQ(evictionOp(w.next), BusOp::WriteBlock);
}

TEST(RwbSemantics, BroadcastsButFlushesThroughMemory)
{
    auto cfg = *findProtocol("RWB");
    // Like Dragon, writes to shared lines broadcast and keep copies.
    auto w = onProcessorWrite(LineState::SharedClean, cfg);
    EXPECT_EQ(w.busOp, BusOp::WriteWord);
    auto snoop = onSnoop(LineState::SharedClean, BusOp::WriteWord, cfg);
    EXPECT_NE(snoop.next, LineState::Invalid);
    // Unlike Dragon (no mod2), a dirty holder answers a read by
    // flushing to memory rather than supplying directly.
    auto flush = onSnoop(LineState::ExclusiveDirty, BusOp::Read, cfg);
    EXPECT_FALSE(flush.suppliesData);
    EXPECT_TRUE(flush.flushesToMemory);
}

TEST(WriteThroughSemantics, SharedWritesAlwaysBroadcast)
{
    auto cfg = *findProtocol("WriteThrough");
    // Every write to a shared line goes to the bus and memory, and the
    // line never accumulates write-back state from hits.
    LineState s = fillState(false, true, cfg);
    auto w = onProcessorWrite(s, cfg);
    EXPECT_EQ(w.busOp, BusOp::WriteWord);
    EXPECT_TRUE(w.updatesMemory);
    EXPECT_EQ(w.next, LineState::SharedClean);
    // and again - no "write once" transition to exclusivity
    auto w2 = onProcessorWrite(w.next, cfg);
    EXPECT_EQ(w2.busOp, BusOp::WriteWord);
    EXPECT_EQ(w2.next, LineState::SharedClean);
}

TEST(CatalogSemantics, OnlyMod2ProtocolsEverSupplyData)
{
    for (const auto &p : protocolCatalog()) {
        auto snoop =
            onSnoop(LineState::ExclusiveDirty, BusOp::Read, p.config);
        EXPECT_EQ(snoop.suppliesData, p.config.mod2) << p.name;
        EXPECT_EQ(snoop.flushesToMemory, !p.config.mod2) << p.name;
    }
}

TEST(CatalogSemantics, OnlyMod4ProtocolsKeepCopiesOnWrite)
{
    for (const auto &p : protocolCatalog()) {
        auto snoop =
            onSnoop(LineState::SharedClean, BusOp::WriteWord, p.config);
        if (p.config.mod4)
            EXPECT_NE(snoop.next, LineState::Invalid) << p.name;
        else
            EXPECT_EQ(snoop.next, LineState::Invalid) << p.name;
    }
}

TEST(CatalogSemantics, OnlyMod1ProtocolsLoadExclusive)
{
    for (const auto &p : protocolCatalog()) {
        LineState s = fillState(false, false, p.config);
        if (p.config.mod1)
            EXPECT_EQ(s, LineState::ExclusiveClean) << p.name;
        else
            EXPECT_EQ(s, LineState::SharedClean) << p.name;
    }
}

} // namespace
} // namespace snoop
