/** Unit tests for workload/derived: the Section 2.3 model inputs. */

#include <gtest/gtest.h>

#include "workload/derived.hh"

namespace snoop {
namespace {

DerivedInputs
derive(SharingLevel level, const std::string &mods)
{
    return DerivedInputs::compute(presets::appendixA(level),
                                  ProtocolConfig::fromModString(mods));
}

// Every (sharing level, mod combination) pair must satisfy the basic
// structural invariants.
class DerivedSweep
    : public testing::TestWithParam<std::tuple<SharingLevel, unsigned>>
{
  protected:
    DerivedInputs
    inputs() const
    {
        auto [level, idx] = GetParam();
        return DerivedInputs::compute(presets::appendixA(level),
                                      ProtocolConfig::fromIndex(idx));
    }
};

TEST_P(DerivedSweep, RequestTypesPartitionUnity)
{
    auto d = inputs();
    EXPECT_NEAR(d.pLocal + d.pBc + d.pRr, 1.0, 1e-9);
    EXPECT_GE(d.pLocal, 0.0);
    EXPECT_GE(d.pBc, 0.0);
    EXPECT_GE(d.pRr, 0.0);
}

TEST_P(DerivedSweep, ConditionalProbabilitiesInRange)
{
    auto d = inputs();
    EXPECT_GE(d.pCsupwbGivenRr, 0.0);
    EXPECT_LE(d.pCsupwbGivenRr, 1.0);
    EXPECT_GE(d.pReqwbGivenRr, 0.0);
    EXPECT_LE(d.pReqwbGivenRr, 1.0);
    EXPECT_GE(d.pA, 0.0);
    EXPECT_LE(d.pA, 1.0);
    EXPECT_GE(d.pB, 0.0);
    EXPECT_LE(d.pB, 1.0);
    EXPECT_LE(d.pA + d.pB, 1.0);
    EXPECT_GE(d.csupFrac, 0.0);
    EXPECT_LE(d.csupFrac, 1.0);
}

TEST_P(DerivedSweep, ReadTimePositiveWhenMissesExist)
{
    auto d = inputs();
    if (d.pRr > 0.0) {
        EXPECT_GT(d.tRead, 0.0);
        // t_read is bounded by worst case: flush + memory read + victim
        // write-back.
        EXPECT_LE(d.tRead, d.timing.tWriteBack + d.timing.tReadMem +
                      d.timing.tWriteBack + 1e-9);
    }
}

TEST_P(DerivedSweep, MemFactorNonNegative)
{
    auto d = inputs();
    EXPECT_GE(d.memFactor, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllLevelsAllMods, DerivedSweep,
    testing::Combine(testing::ValuesIn(kSharingLevels),
                     testing::Range(0u, 16u)));

TEST(Derived, WriteOnceFivePercentKnownValues)
{
    auto d = derive(SharingLevel::FivePercent, "");
    EXPECT_NEAR(d.pLocal, 0.856275, 1e-9);
    EXPECT_NEAR(d.pBc, 0.084725, 1e-9);
    EXPECT_NEAR(d.pRr, 0.059, 1e-9);
    // p_csupwb|rr = (0.01 * 0.5 * 0.3) / 0.059
    EXPECT_NEAR(d.pCsupwbGivenRr, 0.0015 / 0.059, 1e-9);
    // p_reqwb|rr = (0.0475*0.2 + 0.01*0.5) / 0.059
    EXPECT_NEAR(d.pReqwbGivenRr, 0.0145 / 0.059, 1e-9);
}

TEST(Derived, Mod1MovesPrivateBroadcastsToLocal)
{
    auto base = derive(SharingLevel::FivePercent, "");
    auto m1 = derive(SharingLevel::FivePercent, "1");
    // sw write-hit broadcasts remain; private ones become local
    EXPECT_NEAR(m1.pBc, 0.0035, 1e-9);
    EXPECT_NEAR(m1.pLocal, base.pLocal + 0.081225, 1e-9);
    // rep_p rises, so t_read grows slightly
    EXPECT_GT(m1.tRead, base.tRead);
}

TEST(Derived, Mod2RemovesCacheSupplyMemoryUpdate)
{
    auto base = derive(SharingLevel::FivePercent, "");
    auto m2 = derive(SharingLevel::FivePercent, "2");
    // the dirty-supplier flush disappears from the memory factor
    EXPECT_LT(m2.memFactor,
              base.memFactor + 1e-12);
    // and the direct supply shortens the dirty-supplier read
    double base_sup_dirty_cost = base.timing.tWriteBack +
        base.timing.tReadMem;
    double m2_sup_dirty_cost = m2.timing.tReadCache;
    EXPECT_LT(m2_sup_dirty_cost, base_sup_dirty_cost);
}

TEST(Derived, Mod3RemovesBroadcastMemoryTraffic)
{
    auto base = derive(SharingLevel::FivePercent, "");
    auto m3 = derive(SharingLevel::FivePercent, "3");
    // invalidations do not touch memory: broadcast term drops out
    EXPECT_LT(m3.memFactor, base.memFactor);
    // p_bc itself is unchanged in structure (same events broadcast)
    EXPECT_NEAR(m3.pBc, base.pBc, 1e-9);
}

TEST(Derived, Mod4BroadcastsAllNonExclusiveSwWrites)
{
    auto base = derive(SharingLevel::TwentyPercent, "");
    auto m4 = derive(SharingLevel::TwentyPercent, "4");
    // all sw write hits broadcast (not just unmodified ones)
    EXPECT_GT(m4.pBc, base.pBc);
}

TEST(Derived, Mod14RaisesHitRateLoweringMissTraffic)
{
    auto m1 = derive(SharingLevel::TwentyPercent, "1");
    auto m14 = derive(SharingLevel::TwentyPercent, "14");
    EXPECT_LT(m14.pRr, m1.pRr);
    EXPECT_DOUBLE_EQ(m14.effective.hSw, 0.95);
}

TEST(Derived, Mod34BroadcastsWithoutMemoryUpdate)
{
    auto d = derive(SharingLevel::FivePercent, "34");
    EXPECT_FALSE(d.protocol.broadcastUpdatesMemory());
    EXPECT_TRUE(d.protocol.broadcasterTakesOwnership());
    // memory factor excludes the broadcast term
    auto d4 = derive(SharingLevel::FivePercent, "4");
    EXPECT_LT(d.memFactor, d4.memFactor);
}

TEST(Derived, OnePercentHasNoCacheSupplyWriteBacks)
{
    auto d = derive(SharingLevel::OnePercent, "");
    EXPECT_DOUBLE_EQ(d.pCsupwbGivenRr, 0.0);
    EXPECT_DOUBLE_EQ(d.pB, 0.0);
}

TEST(Derived, AllHitsWorkloadIsFullyLocal)
{
    WorkloadParams p = presets::appendixA(SharingLevel::FivePercent);
    p.hPrivate = p.hSro = p.hSw = 1.0;
    p.amodPrivate = p.amodSw = 1.0;
    auto d = DerivedInputs::compute(p, ProtocolConfig::writeOnce());
    EXPECT_NEAR(d.pLocal, 1.0, 1e-12);
    EXPECT_NEAR(d.pBc, 0.0, 1e-12);
    EXPECT_NEAR(d.pRr, 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(d.tRead, 0.0);
}

TEST(Derived, TimingValidation)
{
    BusTiming t;
    t.tReadMem = -1.0;
    EXPECT_EXIT(t.validate(), testing::ExitedWithCode(1), "positive");
    BusTiming t2;
    t2.numModules = 0;
    EXPECT_EXIT(t2.validate(), testing::ExitedWithCode(1), "numModules");
}

TEST(Derived, StressPresetHasMaximalSnoopExposure)
{
    auto d = DerivedInputs::compute(presets::stressTest(),
                                    ProtocolConfig::writeOnce());
    // csupply = 1 means every shared miss is supplied by a cache
    EXPECT_NEAR(d.csupFrac, 1.0, 1e-12);
    // rep = 0 means no victim write-backs
    EXPECT_DOUBLE_EQ(d.pReqwbGivenRr, 0.0);
}

} // namespace
} // namespace snoop
