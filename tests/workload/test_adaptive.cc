/** Tests for the adaptive-RWB input mixture. */

#include <gtest/gtest.h>

#include "mva/solver.hh"
#include "workload/adaptive.hh"

namespace snoop {
namespace {

DerivedInputs
mode(const char *mods, SharingLevel level = SharingLevel::FivePercent)
{
    return DerivedInputs::compute(presets::appendixA(level),
                                  ProtocolConfig::fromModString(mods));
}

TEST(Blend, EndpointsReproduceInputs)
{
    auto a = mode("13");
    auto b = mode("134");
    auto at_zero = blendInputs(a, b, 0.0);
    auto at_one = blendInputs(a, b, 1.0);
    EXPECT_NEAR(at_zero.pLocal, a.pLocal, 1e-12);
    EXPECT_NEAR(at_zero.pBc, a.pBc, 1e-12);
    EXPECT_NEAR(at_zero.tRead, a.tRead, 1e-12);
    EXPECT_NEAR(at_one.pLocal, b.pLocal, 1e-12);
    EXPECT_NEAR(at_one.pRr, b.pRr, 1e-12);
    EXPECT_NEAR(at_one.tRead, b.tRead, 1e-12);
}

TEST(Blend, RequestTypesStayAPartition)
{
    auto a = mode("13");
    auto b = mode("134");
    for (double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        auto m = blendInputs(a, b, w);
        EXPECT_NEAR(m.pLocal + m.pBc + m.pRr, 1.0, 1e-9) << "w=" << w;
        EXPECT_GE(m.pA, 0.0);
        EXPECT_LE(m.pA + m.pB, 1.0);
    }
}

TEST(Blend, SpeedupLiesBetweenEndpointsAtEveryN)
{
    auto a = mode("13");
    auto b = mode("134");
    MvaSolver solver;
    for (unsigned n : {4u, 10u, 50u}) {
        double sa = solver.solve(a, n).speedup;
        double sb = solver.solve(b, n).speedup;
        double lo = std::min(sa, sb), hi = std::max(sa, sb);
        for (double w : {0.25, 0.5, 0.75}) {
            double s = solver.solve(blendInputs(a, b, w), n).speedup;
            EXPECT_GE(s, lo * 0.995) << "w=" << w << " N=" << n;
            EXPECT_LE(s, hi * 1.005) << "w=" << w << " N=" << n;
        }
    }
}

TEST(RwbAdaptive, MatchesPureModesAtEndpoints)
{
    auto wl = presets::appendixA(SharingLevel::TwentyPercent);
    MvaSolver solver;
    double inv = solver
        .solve(DerivedInputs::compute(
                   wl, ProtocolConfig::fromModString("13")), 20)
        .speedup;
    double bc = solver
        .solve(DerivedInputs::compute(
                   wl, ProtocolConfig::fromModString("134")), 20)
        .speedup;
    EXPECT_NEAR(solver.solve(rwbAdaptiveInputs(wl, 0.0), 20).speedup,
                inv, inv * 1e-9);
    EXPECT_NEAR(solver.solve(rwbAdaptiveInputs(wl, 1.0), 20).speedup,
                bc, bc * 1e-9);
}

TEST(RwbAdaptive, SpeedupVariesMonotonicallyInSwitchProbability)
{
    // At the Appendix A workloads broadcast mode wins (it lifts h_sw
    // to 0.95), so speedup should rise with p_broadcast.
    auto wl = presets::appendixA(SharingLevel::TwentyPercent);
    MvaSolver solver;
    double prev = 0.0;
    for (double p : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        double s = solver.solve(rwbAdaptiveInputs(wl, p), 20).speedup;
        EXPECT_GE(s, prev * 0.999) << "p=" << p;
        prev = s;
    }
}

TEST(BlendDeath, BadInputs)
{
    auto a = mode("13");
    auto b = mode("134");
    EXPECT_EXIT(blendInputs(a, b, 1.5), testing::ExitedWithCode(1),
                "probability");
    auto wl = presets::appendixA(SharingLevel::FivePercent);
    EXPECT_EXIT(rwbAdaptiveInputs(wl, -0.1), testing::ExitedWithCode(1),
                "probability");
    BusTiming other;
    other.tReadMem = 20.0;
    auto c = DerivedInputs::compute(
        presets::appendixA(SharingLevel::FivePercent),
        ProtocolConfig::fromModString("134"), other);
    EXPECT_EXIT(blendInputs(a, c, 0.5), testing::ExitedWithCode(1),
                "timing");
}

} // namespace
} // namespace snoop
