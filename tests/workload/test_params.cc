/** Unit tests for workload/params. */

#include <gtest/gtest.h>

#include "workload/params.hh"

namespace snoop {
namespace {

TEST(SharingLevel, Names)
{
    EXPECT_EQ(to_string(SharingLevel::OnePercent), "1%");
    EXPECT_EQ(to_string(SharingLevel::FivePercent), "5%");
    EXPECT_EQ(to_string(SharingLevel::TwentyPercent), "20%");
}

TEST(Presets, AppendixAStreamMixes)
{
    auto p1 = presets::appendixA(SharingLevel::OnePercent);
    EXPECT_DOUBLE_EQ(p1.pPrivate, 0.99);
    EXPECT_DOUBLE_EQ(p1.pSro, 0.01);
    EXPECT_DOUBLE_EQ(p1.pSw, 0.00);

    auto p5 = presets::appendixA(SharingLevel::FivePercent);
    EXPECT_DOUBLE_EQ(p5.pPrivate, 0.95);
    EXPECT_DOUBLE_EQ(p5.pSro, 0.03);
    EXPECT_DOUBLE_EQ(p5.pSw, 0.02);

    auto p20 = presets::appendixA(SharingLevel::TwentyPercent);
    EXPECT_DOUBLE_EQ(p20.pPrivate, 0.80);
    EXPECT_DOUBLE_EQ(p20.pSro, 0.15);
    EXPECT_DOUBLE_EQ(p20.pSw, 0.05);
}

TEST(Presets, AppendixACommonValues)
{
    for (auto level : kSharingLevels) {
        auto p = presets::appendixA(level);
        EXPECT_DOUBLE_EQ(p.tau, 2.5);
        EXPECT_DOUBLE_EQ(p.hPrivate, 0.95);
        EXPECT_DOUBLE_EQ(p.hSro, 0.95);
        EXPECT_DOUBLE_EQ(p.hSw, 0.5);
        EXPECT_DOUBLE_EQ(p.rPrivate, 0.7);
        EXPECT_DOUBLE_EQ(p.rSw, 0.5);
        EXPECT_DOUBLE_EQ(p.amodPrivate, 0.7);
        EXPECT_DOUBLE_EQ(p.amodSw, 0.3);
        EXPECT_DOUBLE_EQ(p.csupplySro, 0.95);
        EXPECT_DOUBLE_EQ(p.csupplySw, 0.5);
        EXPECT_DOUBLE_EQ(p.wbCsupply, 0.3);
        EXPECT_DOUBLE_EQ(p.repP, 0.2);
        EXPECT_DOUBLE_EQ(p.repSw, 0.5);
    }
}

TEST(Presets, StressTestMatchesSection43)
{
    auto p = presets::stressTest();
    EXPECT_DOUBLE_EQ(p.repP, 0.0);
    EXPECT_DOUBLE_EQ(p.repSw, 0.0);
    EXPECT_DOUBLE_EQ(p.amodSw, 0.0);
    EXPECT_DOUBLE_EQ(p.csupplySro, 1.0);
    EXPECT_DOUBLE_EQ(p.csupplySw, 1.0);
    EXPECT_DOUBLE_EQ(p.pSw, 0.2);
    EXPECT_DOUBLE_EQ(p.hSw, 0.1);
}

TEST(Presets, ArchibaldBaerRaisesAmod)
{
    auto p = presets::archibaldBaer(SharingLevel::OnePercent);
    EXPECT_DOUBLE_EQ(p.amodPrivate, 0.95);
    // everything else unchanged from Appendix A
    EXPECT_DOUBLE_EQ(p.pPrivate, 0.99);
}

TEST(Adjusted, Mod1RaisesRepP)
{
    auto base = presets::appendixA(SharingLevel::FivePercent);
    auto adj = base.adjustedFor(ProtocolConfig::fromModString("1"));
    EXPECT_NEAR(adj.repP, 0.3, 1e-12);
    EXPECT_DOUBLE_EQ(adj.repSw, 0.5);
}

TEST(Adjusted, Mod2OrMod3RaisesRepSw)
{
    auto base = presets::appendixA(SharingLevel::FivePercent);
    EXPECT_NEAR(base.adjustedFor(ProtocolConfig::fromModString("2")).repSw,
                0.6, 1e-12);
    EXPECT_NEAR(base.adjustedFor(ProtocolConfig::fromModString("3")).repSw,
                0.6, 1e-12);
    EXPECT_NEAR(base.adjustedFor(ProtocolConfig::fromModString("23")).repSw,
                0.7, 1e-12);
}

TEST(Adjusted, Mod1And4RaisesHsw)
{
    auto base = presets::appendixA(SharingLevel::TwentyPercent);
    auto adj = base.adjustedFor(ProtocolConfig::fromModString("14"));
    EXPECT_DOUBLE_EQ(adj.hSw, 0.95);
    // mod4 alone does not change the hit rate
    auto adj4 = base.adjustedFor(ProtocolConfig::fromModString("4"));
    EXPECT_DOUBLE_EQ(adj4.hSw, 0.5);
}

TEST(Adjusted, ScalesProportionallyFromCustomBase)
{
    auto p = presets::stressTest(); // repP = repSw = 0
    auto adj = p.adjustedFor(ProtocolConfig::fromModString("123"));
    EXPECT_DOUBLE_EQ(adj.repP, 0.0);
    EXPECT_DOUBLE_EQ(adj.repSw, 0.0);
}

TEST(Adjusted, CapsAtOne)
{
    WorkloadParams p = presets::appendixA(SharingLevel::FivePercent);
    p.repSw = 0.9;
    auto adj = p.adjustedFor(ProtocolConfig::fromModString("23"));
    EXPECT_DOUBLE_EQ(adj.repSw, 1.0);
}

TEST(ValidateDeath, RejectsBadStreamSum)
{
    WorkloadParams p = presets::appendixA(SharingLevel::FivePercent);
    p.pSw = 0.5;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "sum to");
}

TEST(ValidateDeath, RejectsOutOfRangeProbability)
{
    WorkloadParams p = presets::appendixA(SharingLevel::FivePercent);
    p.hSw = 1.5;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "hSw");
}

TEST(ValidateDeath, RejectsNegativeTau)
{
    WorkloadParams p = presets::appendixA(SharingLevel::FivePercent);
    p.tau = -1.0;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "tau");
}

} // namespace
} // namespace snoop
