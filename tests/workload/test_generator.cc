/** Unit and statistical tests for workload/generator. */

#include <map>

#include <gtest/gtest.h>

#include "workload/generator.hh"

namespace snoop {
namespace {

TEST(StreamClass, Names)
{
    EXPECT_EQ(to_string(StreamClass::Private), "private");
    EXPECT_EQ(to_string(StreamClass::SharedReadOnly), "sro");
    EXPECT_EQ(to_string(StreamClass::SharedWritable), "sw");
}

TEST(ReferenceSampler, DeterministicGivenSeed)
{
    auto p = presets::appendixA(SharingLevel::FivePercent);
    ReferenceSampler a(p, Rng(5)), b(p, Rng(5));
    for (int i = 0; i < 200; ++i) {
        auto ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.cls, rb.cls);
        EXPECT_EQ(ra.isWrite, rb.isWrite);
        EXPECT_EQ(ra.hit, rb.hit);
    }
}

TEST(ReferenceSampler, LongRunFrequenciesMatchParameters)
{
    auto p = presets::appendixA(SharingLevel::FivePercent);
    ReferenceSampler s(p, Rng(1234));
    const int n = 400000;
    int priv = 0, sro = 0, sw = 0;
    int priv_reads = 0, priv_total = 0;
    int priv_hits = 0;
    int sw_miss_supplied = 0, sw_misses = 0;
    for (int i = 0; i < n; ++i) {
        auto r = s.next();
        switch (r.cls) {
          case StreamClass::Private:
            ++priv;
            ++priv_total;
            priv_reads += !r.isWrite;
            priv_hits += r.hit;
            break;
          case StreamClass::SharedReadOnly:
            ++sro;
            EXPECT_FALSE(r.isWrite);
            break;
          case StreamClass::SharedWritable:
            ++sw;
            if (!r.hit) {
                ++sw_misses;
                sw_miss_supplied += r.copyElsewhere;
            }
            break;
        }
    }
    EXPECT_NEAR(priv / double(n), 0.95, 0.005);
    EXPECT_NEAR(sro / double(n), 0.03, 0.005);
    EXPECT_NEAR(sw / double(n), 0.02, 0.005);
    EXPECT_NEAR(priv_reads / double(priv_total), 0.7, 0.01);
    EXPECT_NEAR(priv_hits / double(priv_total), 0.95, 0.01);
    EXPECT_NEAR(sw_miss_supplied / double(sw_misses), 0.5, 0.05);
}

TEST(ReferenceSampler, StructuralInvariants)
{
    auto p = presets::appendixA(SharingLevel::TwentyPercent);
    ReferenceSampler s(p, Rng(9));
    for (int i = 0; i < 50000; ++i) {
        auto r = s.next();
        if (r.hit) {
            EXPECT_FALSE(r.copyElsewhere);
            EXPECT_FALSE(r.victimWriteback);
        }
        if (!r.isWrite || !r.hit) {
            EXPECT_FALSE(r.alreadyModified);
        }
        if (r.cls == StreamClass::Private && !r.hit) {
            EXPECT_FALSE(r.copyElsewhere);
        }
        if (r.cls == StreamClass::SharedReadOnly) {
            EXPECT_FALSE(r.isWrite);
            EXPECT_FALSE(r.supplierDirty);
            EXPECT_FALSE(r.victimWriteback);
        }
        if (!r.copyElsewhere) {
            EXPECT_FALSE(r.supplierDirty);
        }
    }
}

TEST(TraceGenerator, AddressSpacesAreDisjoint)
{
    auto p = presets::appendixA(SharingLevel::TwentyPercent);
    TraceConfig cfg;
    SyntheticTraceGenerator g0(p, cfg, 0, 4, Rng(1));
    SyntheticTraceGenerator g1(p, cfg, 1, 4, Rng(2));
    uint64_t per_proc = cfg.privateHotBlocks + cfg.privateColdBlocks;
    for (int i = 0; i < 20000; ++i) {
        auto t0 = g0.next();
        auto t1 = g1.next();
        if (t0.cls == StreamClass::Private) {
            EXPECT_LT(t0.blockId, per_proc);
        }
        if (t1.cls == StreamClass::Private) {
            EXPECT_GE(t1.blockId, per_proc);
            EXPECT_LT(t1.blockId, 2 * per_proc);
        }
        if (t0.cls == StreamClass::SharedReadOnly) {
            EXPECT_GE(t0.blockId, g0.sroBase());
            EXPECT_LT(t0.blockId, g0.swBase());
        }
        if (t0.cls == StreamClass::SharedWritable) {
            EXPECT_GE(t0.blockId, g0.swBase());
        }
    }
}

TEST(TraceGenerator, SharedPoolsAreSharedAcrossProcessors)
{
    auto p = presets::appendixA(SharingLevel::TwentyPercent);
    TraceConfig cfg;
    SyntheticTraceGenerator g0(p, cfg, 0, 2, Rng(1));
    SyntheticTraceGenerator g1(p, cfg, 1, 2, Rng(2));
    EXPECT_EQ(g0.sroBase(), g1.sroBase());
    EXPECT_EQ(g0.swBase(), g1.swBase());
}

TEST(TraceGenerator, SroReferencesAreNeverWrites)
{
    auto p = presets::appendixA(SharingLevel::TwentyPercent);
    SyntheticTraceGenerator g(p, TraceConfig{}, 0, 1, Rng(3));
    for (int i = 0; i < 20000; ++i) {
        auto t = g.next();
        if (t.cls == StreamClass::SharedReadOnly) {
            EXPECT_FALSE(t.isWrite);
        }
    }
}

TEST(TraceGenerator, HotSetCreatesLocality)
{
    auto p = presets::appendixA(SharingLevel::OnePercent);
    TraceConfig cfg;
    cfg.privateHotBlocks = 4;
    cfg.privateLocality = 0.9;
    SyntheticTraceGenerator g(p, cfg, 0, 1, Rng(4));
    std::map<uint64_t, int> counts;
    int privs = 0;
    for (int i = 0; i < 100000; ++i) {
        auto t = g.next();
        if (t.cls != StreamClass::Private)
            continue;
        ++privs;
        counts[t.blockId]++;
    }
    int hot = 0;
    for (uint64_t b = 0; b < 4; ++b)
        hot += counts[b];
    EXPECT_NEAR(hot / double(privs), 0.9, 0.01);
}

TEST(TraceGeneratorDeath, BadConfiguration)
{
    auto p = presets::appendixA(SharingLevel::FivePercent);
    TraceConfig cfg;
    EXPECT_DEATH(SyntheticTraceGenerator(p, cfg, 3, 2, Rng(1)),
                 "out of range");
    cfg.swBlocks = 0;
    EXPECT_EXIT(SyntheticTraceGenerator(p, cfg, 0, 2, Rng(1)),
                testing::ExitedWithCode(1), "non-empty");
}

} // namespace
} // namespace snoop
