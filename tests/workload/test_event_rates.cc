/** Unit tests for workload/event_rates. */

#include <gtest/gtest.h>

#include "workload/event_rates.hh"

namespace snoop {
namespace {

class EventRatesAllLevels
    : public testing::TestWithParam<SharingLevel>
{
};

TEST_P(EventRatesAllLevels, CategoriesPartitionUnity)
{
    auto e = EventRates::compute(presets::appendixA(GetParam()));
    EXPECT_NEAR(e.total(), 1.0, 1e-12);
}

TEST_P(EventRatesAllLevels, AggregatesAreConsistent)
{
    auto e = EventRates::compute(presets::appendixA(GetParam()));
    EXPECT_NEAR(e.privMiss(), e.privReadMiss + e.privWriteMiss, 1e-15);
    EXPECT_NEAR(e.swMiss(), e.swReadMiss + e.swWriteMiss, 1e-15);
    EXPECT_NEAR(e.totalMiss(), e.privMiss() + e.sroMiss + e.swMiss(),
                1e-15);
    EXPECT_NEAR(e.sharedMiss(), e.sroMiss + e.swMiss(), 1e-15);
    EXPECT_NEAR(e.writeHitUnmod(),
                e.privWriteHitUnmod + e.swWriteHitUnmod, 1e-15);
}

INSTANTIATE_TEST_SUITE_P(AppendixA, EventRatesAllLevels,
                         testing::ValuesIn(kSharingLevels));

TEST(EventRates, FivePercentKnownValues)
{
    auto e = EventRates::compute(
        presets::appendixA(SharingLevel::FivePercent));
    // private: 0.95 * 0.7 * 0.95
    EXPECT_NEAR(e.privReadHit, 0.63175, 1e-12);
    // private write hit unmodified: 0.95 * 0.3 * 0.95 * 0.3
    EXPECT_NEAR(e.privWriteHitUnmod, 0.081225, 1e-12);
    // private misses: 0.95 * 0.05
    EXPECT_NEAR(e.privMiss(), 0.0475, 1e-12);
    // sro: 0.03 * 0.05
    EXPECT_NEAR(e.sroMiss, 0.0015, 1e-12);
    // sw misses: 0.02 * 0.5
    EXPECT_NEAR(e.swMiss(), 0.01, 1e-12);
    // sw write hit unmodified: 0.02 * 0.5 * 0.5 * 0.7
    EXPECT_NEAR(e.swWriteHitUnmod, 0.0035, 1e-12);
}

TEST(EventRates, NoSwStreamAtOnePercent)
{
    auto e = EventRates::compute(
        presets::appendixA(SharingLevel::OnePercent));
    EXPECT_DOUBLE_EQ(e.swReadHit, 0.0);
    EXPECT_DOUBLE_EQ(e.swMiss(), 0.0);
    EXPECT_DOUBLE_EQ(e.swWriteHitUnmod, 0.0);
}

TEST(EventRates, PerfectHitRateMeansNoMisses)
{
    WorkloadParams p = presets::appendixA(SharingLevel::FivePercent);
    p.hPrivate = p.hSro = p.hSw = 1.0;
    auto e = EventRates::compute(p);
    EXPECT_DOUBLE_EQ(e.totalMiss(), 0.0);
    EXPECT_NEAR(e.total(), 1.0, 1e-12);
}

TEST(EventRates, AllReadsMeansNoWriteEvents)
{
    WorkloadParams p = presets::appendixA(SharingLevel::FivePercent);
    p.rPrivate = 1.0;
    p.rSw = 1.0;
    auto e = EventRates::compute(p);
    EXPECT_DOUBLE_EQ(e.privWriteHitMod, 0.0);
    EXPECT_DOUBLE_EQ(e.privWriteHitUnmod, 0.0);
    EXPECT_DOUBLE_EQ(e.privWriteMiss, 0.0);
    EXPECT_DOUBLE_EQ(e.swWriteMiss, 0.0);
    EXPECT_NEAR(e.total(), 1.0, 1e-12);
}

TEST(EventRates, AmodSplitsWriteHits)
{
    WorkloadParams p = presets::appendixA(SharingLevel::FivePercent);
    auto e = EventRates::compute(p);
    double write_hits = e.privWriteHitMod + e.privWriteHitUnmod;
    EXPECT_NEAR(e.privWriteHitMod / write_hits, p.amodPrivate, 1e-12);
}

} // namespace
} // namespace snoop
