/** Unit tests for stats/time_weighted. */

#include <gtest/gtest.h>

#include "stats/time_weighted.hh"

namespace snoop {
namespace {

TEST(TimeWeighted, ConstantSignal)
{
    TimeWeighted tw(0.0, 3.0);
    EXPECT_DOUBLE_EQ(tw.timeAverage(10.0), 3.0);
}

TEST(TimeWeighted, PiecewiseConstantAverage)
{
    // 0 for [0,2), 1 for [2,4), 3 for [4,10): avg = (0*2+1*2+3*6)/10 = 2
    TimeWeighted tw(0.0, 0.0);
    tw.update(2.0, 1.0);
    tw.update(4.0, 3.0);
    EXPECT_DOUBLE_EQ(tw.timeAverage(10.0), 2.0);
}

TEST(TimeWeighted, AddAdjustsCurrentValue)
{
    TimeWeighted tw(0.0, 0.0);
    tw.add(1.0, 2.0);  // value 2 from t=1
    tw.add(3.0, -1.0); // value 1 from t=3
    EXPECT_DOUBLE_EQ(tw.current(), 1.0);
    // integral over [0,4): 0*1 + 2*2 + 1*1 = 5
    EXPECT_DOUBLE_EQ(tw.timeAverage(4.0), 1.25);
}

TEST(TimeWeighted, QueryAtLastUpdateTime)
{
    TimeWeighted tw(0.0, 5.0);
    tw.update(2.0, 1.0);
    // average over [0,2) is 5
    EXPECT_DOUBLE_EQ(tw.timeAverage(2.0), 5.0);
}

TEST(TimeWeighted, ZeroSpanReturnsCurrent)
{
    TimeWeighted tw(1.0, 7.0);
    EXPECT_DOUBLE_EQ(tw.timeAverage(1.0), 7.0);
}

TEST(TimeWeighted, ResetWindowDiscardsHistory)
{
    TimeWeighted tw(0.0, 10.0); // warm-up at high value
    tw.update(5.0, 1.0);
    tw.resetWindow(5.0);
    EXPECT_DOUBLE_EQ(tw.timeAverage(15.0), 1.0);
}

TEST(TimeWeighted, UtilizationUseCase)
{
    // busy indicator: busy [1,3) and [4,5) within [0,10) -> 30%
    TimeWeighted busy(0.0, 0.0);
    busy.update(1.0, 1.0);
    busy.update(3.0, 0.0);
    busy.update(4.0, 1.0);
    busy.update(5.0, 0.0);
    EXPECT_DOUBLE_EQ(busy.timeAverage(10.0), 0.3);
}

TEST(TimeWeightedDeath, BackwardTimePanics)
{
    TimeWeighted tw(5.0, 0.0);
    EXPECT_DEATH(tw.update(4.0, 1.0), "backward");
    EXPECT_DEATH(tw.timeAverage(4.0), "precedes");
}

} // namespace
} // namespace snoop
