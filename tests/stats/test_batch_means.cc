/** Unit tests for stats/batch_means. */

#include <cmath>

#include <gtest/gtest.h>

#include "random/rng.hh"
#include "stats/batch_means.hh"

namespace snoop {
namespace {

TEST(BatchMeans, BatchesFormAtExactBoundaries)
{
    BatchMeans bm(10);
    for (int i = 0; i < 35; ++i)
        bm.add(1.0);
    EXPECT_EQ(bm.numBatches(), 3u);
    EXPECT_EQ(bm.count(), 35u);
}

TEST(BatchMeans, GrandMeanIncludesPartialBatch)
{
    BatchMeans bm(4);
    for (double x : {1.0, 2.0, 3.0, 4.0, 100.0})
        bm.add(x);
    EXPECT_DOUBLE_EQ(bm.mean(), 22.0);
}

TEST(BatchMeans, IntervalUndefinedWithFewBatches)
{
    BatchMeans bm(10);
    for (int i = 0; i < 10; ++i)
        bm.add(1.0);
    auto ci = bm.interval();
    EXPECT_EQ(ci.batches, 1u);
    EXPECT_TRUE(std::isinf(ci.halfWidth));
}

TEST(BatchMeans, CoversTrueMeanOfIidStream)
{
    Rng r(41);
    BatchMeans bm(1000);
    for (int i = 0; i < 50000; ++i)
        bm.add(r.exponential(2.0));
    auto ci = bm.interval(0.95);
    EXPECT_EQ(ci.batches, 50u);
    EXPECT_TRUE(ci.contains(2.0))
        << "CI [" << ci.lower() << ", " << ci.upper() << "]";
    EXPECT_LT(ci.relative(), 0.05);
}

TEST(BatchMeans, ConstantStreamHasZeroWidth)
{
    BatchMeans bm(5);
    for (int i = 0; i < 50; ++i)
        bm.add(3.0);
    auto ci = bm.interval();
    EXPECT_DOUBLE_EQ(ci.mean, 3.0);
    EXPECT_DOUBLE_EQ(ci.halfWidth, 0.0);
    EXPECT_TRUE(ci.contains(3.0));
    EXPECT_FALSE(ci.contains(3.1));
}

TEST(BatchMeans, HigherConfidenceWidensInterval)
{
    Rng r(43);
    BatchMeans bm(100);
    for (int i = 0; i < 3000; ++i)
        bm.add(r.uniform());
    auto ci90 = bm.interval(0.90);
    auto ci99 = bm.interval(0.99);
    EXPECT_LT(ci90.halfWidth, ci99.halfWidth);
}

TEST(ConfidenceInterval, Accessors)
{
    ConfidenceInterval ci;
    ci.mean = 10.0;
    ci.halfWidth = 2.0;
    EXPECT_DOUBLE_EQ(ci.lower(), 8.0);
    EXPECT_DOUBLE_EQ(ci.upper(), 12.0);
    EXPECT_DOUBLE_EQ(ci.relative(), 0.2);
    EXPECT_TRUE(ci.contains(9.0));
    EXPECT_FALSE(ci.contains(12.5));
}

TEST(BatchMeans, ZeroSamplesReportNaNMeanNotData)
{
    // An empty accumulator's mean (0.0) must not masquerade as a
    // measurement: with no observations the interval's mean is NaN
    // and the half-width stays infinite.
    BatchMeans bm(10);
    auto ci = bm.interval();
    EXPECT_TRUE(std::isnan(ci.mean));
    EXPECT_TRUE(std::isinf(ci.halfWidth));
    EXPECT_EQ(ci.batches, 0u);
}

TEST(BatchMeans, OneSampleHasFiniteMeanInfiniteWidth)
{
    BatchMeans bm(10);
    bm.add(7.0);
    auto ci = bm.interval();
    EXPECT_DOUBLE_EQ(ci.mean, 7.0);
    EXPECT_TRUE(std::isinf(ci.halfWidth));
    EXPECT_EQ(ci.batches, 0u);
}

TEST(BatchMeans, OneCompletedBatchKeepsInfiniteWidth)
{
    // Exactly one completed batch: a point estimate exists but no
    // variance information does, so the half-width stays infinite.
    BatchMeans bm(5);
    for (int i = 0; i < 5; ++i)
        bm.add(2.0);
    auto ci = bm.interval();
    EXPECT_EQ(ci.batches, 1u);
    EXPECT_DOUBLE_EQ(ci.mean, 2.0);
    EXPECT_TRUE(std::isinf(ci.halfWidth));
}

TEST(BatchMeansDeath, ZeroBatchSizePanics)
{
    EXPECT_DEATH(BatchMeans(0), "batch size");
}

} // namespace
} // namespace snoop
