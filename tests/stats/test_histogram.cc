/** Unit tests for stats/histogram. */

#include <gtest/gtest.h>

#include "random/rng.hh"
#include "stats/histogram.hh"

namespace snoop {
namespace {

TEST(Histogram, BinsSamplesCorrectly)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(0.7);
    h.add(9.1);
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(9), 1u);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderAndOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-0.1);
    h.add(1.0); // upper edge counts as overflow
    h.add(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(2.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.binWidth(), 0.5);
    EXPECT_DOUBLE_EQ(h.binLow(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binLow(3), 3.5);
    EXPECT_EQ(h.numBins(), 4u);
}

TEST(Histogram, BoundaryValuesFallIntoCorrectBin)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.5); // exact internal edge -> second bin
    EXPECT_EQ(h.bin(0), 0u);
    EXPECT_EQ(h.bin(1), 1u);
}

TEST(Histogram, MedianOfUniformSamples)
{
    Histogram h(0.0, 1.0, 100);
    Rng r(31);
    for (int i = 0; i < 100000; ++i)
        h.add(r.uniform());
    EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
    EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
    EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileOnEmptyReturnsLow)
{
    Histogram h(3.0, 5.0, 4);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
}

// Regression: q=0 used to return lo even when no sample was anywhere
// near lo; the minimum of the recorded mass is the low edge of the
// first occupied bin.
TEST(Histogram, QuantileZeroFindsFirstOccupiedBin)
{
    Histogram h(0.0, 10.0, 10);
    h.add(7.2);
    h.add(7.4);
    h.add(8.9);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.0);
    // With underflow mass present, q=0 clamps to lo as documented.
    h.add(-1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

// Regression: a distribution entirely in overflow used to fall off
// the accounting loop - and, at q=0, return lo, the opposite edge of
// where every sample actually landed.
TEST(Histogram, QuantileAllMassInOverflowClampsToHigh)
{
    Histogram h(0.0, 1.0, 4);
    h.add(5.0);
    h.add(6.0);
    h.add(7.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

// A target landing exactly on the cumulative boundary of an occupied
// bin interpolates to that bin's high edge, empty bins in between
// notwithstanding.
TEST(Histogram, QuantileOnEmptyBinBoundary)
{
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(0.6); // bin 0 holds 2 samples; bins 1-2 empty
    h.add(3.5);
    h.add(3.6); // bin 3 holds 2 samples
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0); // boundary after bin 0
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0); // high edge of bin 3
}

// q=1 ends at the high edge of the last occupied bin, not at hi.
TEST(Histogram, QuantileOneStopsAtLastOccupiedBin)
{
    Histogram h(0.0, 10.0, 10);
    h.add(1.5);
    h.add(2.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

// Mixed in-range and overflow mass: quantiles beyond the in-range
// fraction clamp to hi.
TEST(Histogram, QuantileMixedOverflowMass)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25);
    h.add(0.25);
    h.add(3.0);
    h.add(4.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.9), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.25);
}

TEST(Histogram, RenderMentionsCounts)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    std::string out = h.render();
    EXPECT_NE(out.find("#"), std::string::npos);
    EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(HistogramDeath, InvalidConstruction)
{
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "exceed");
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "one bin");
}

TEST(HistogramDeath, OutOfRangeAccess)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_DEATH(h.bin(2), "out of range");
    EXPECT_DEATH(h.quantile(1.5), "out of");
}

} // namespace
} // namespace snoop
