/** Unit tests for stats/histogram. */

#include <gtest/gtest.h>

#include "random/rng.hh"
#include "stats/histogram.hh"

namespace snoop {
namespace {

TEST(Histogram, BinsSamplesCorrectly)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(0.7);
    h.add(9.1);
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(9), 1u);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderAndOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-0.1);
    h.add(1.0); // upper edge counts as overflow
    h.add(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(2.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.binWidth(), 0.5);
    EXPECT_DOUBLE_EQ(h.binLow(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binLow(3), 3.5);
    EXPECT_EQ(h.numBins(), 4u);
}

TEST(Histogram, BoundaryValuesFallIntoCorrectBin)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.5); // exact internal edge -> second bin
    EXPECT_EQ(h.bin(0), 0u);
    EXPECT_EQ(h.bin(1), 1u);
}

TEST(Histogram, MedianOfUniformSamples)
{
    Histogram h(0.0, 1.0, 100);
    Rng r(31);
    for (int i = 0; i < 100000; ++i)
        h.add(r.uniform());
    EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
    EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
    EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileOnEmptyReturnsLow)
{
    Histogram h(3.0, 5.0, 4);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
}

TEST(Histogram, RenderMentionsCounts)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    std::string out = h.render();
    EXPECT_NE(out.find("#"), std::string::npos);
    EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(HistogramDeath, InvalidConstruction)
{
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "exceed");
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "one bin");
}

TEST(HistogramDeath, OutOfRangeAccess)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_DEATH(h.bin(2), "out of range");
    EXPECT_DEATH(h.quantile(1.5), "out of");
}

} // namespace
} // namespace snoop
