/** Unit tests for output-analysis utilities (autocorr, MSER). */

#include <gtest/gtest.h>

#include "random/rng.hh"
#include "stats/series.hh"

namespace snoop {
namespace {

std::vector<double>
iidUniform(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v(n);
    for (auto &x : v)
        x = rng.uniform();
    return v;
}

/** AR(1) process x_t = phi x_{t-1} + e_t. */
std::vector<double>
ar1(size_t n, double phi, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v(n);
    double x = 0.0;
    for (auto &out : v) {
        x = phi * x + rng.uniform(-1.0, 1.0);
        out = x;
    }
    return v;
}

TEST(Autocorrelation, LagZeroIsOne)
{
    auto v = iidUniform(100, 1);
    EXPECT_DOUBLE_EQ(autocorrelation(v, 0), 1.0);
}

TEST(Autocorrelation, IidIsNearZero)
{
    auto v = iidUniform(50000, 2);
    EXPECT_NEAR(autocorrelation(v, 1), 0.0, 0.02);
    EXPECT_NEAR(autocorrelation(v, 5), 0.0, 0.02);
}

TEST(Autocorrelation, Ar1MatchesPhi)
{
    for (double phi : {0.3, 0.6, 0.9}) {
        auto v = ar1(200000, phi, 3);
        EXPECT_NEAR(autocorrelation(v, 1), phi, 0.02) << phi;
        EXPECT_NEAR(autocorrelation(v, 2), phi * phi, 0.03) << phi;
    }
}

TEST(Autocorrelation, AlternatingSeriesIsNegative)
{
    std::vector<double> v;
    for (int i = 0; i < 1000; ++i)
        v.push_back(i % 2 ? 1.0 : -1.0);
    EXPECT_NEAR(autocorrelation(v, 1), -1.0, 0.01);
}

TEST(Autocorrelation, ConstantSeriesIsZero)
{
    std::vector<double> v(100, 3.0);
    EXPECT_DOUBLE_EQ(autocorrelation(v, 1), 0.0);
}

TEST(AutocorrelationDeath, BadArgs)
{
    EXPECT_EXIT(autocorrelation({}, 0), testing::ExitedWithCode(1),
                "empty");
    EXPECT_EXIT(autocorrelation({1.0, 2.0}, 2),
                testing::ExitedWithCode(1), "lag");
}

TEST(MinimumBatch, IidNeedsSmallBatches)
{
    auto v = iidUniform(20000, 7);
    size_t batch = minimumUncorrelatedBatch(v, 1024);
    EXPECT_GE(batch, 1u);
    EXPECT_LE(batch, 4u);
}

TEST(MinimumBatch, CorrelatedSeriesNeedsBiggerBatches)
{
    auto weak = ar1(40000, 0.3, 11);
    auto strong = ar1(40000, 0.95, 11);
    size_t weak_batch = minimumUncorrelatedBatch(weak, 4096);
    size_t strong_batch = minimumUncorrelatedBatch(strong, 4096);
    ASSERT_GT(weak_batch, 0u);
    ASSERT_GT(strong_batch, 0u);
    EXPECT_GT(strong_batch, weak_batch);
}

TEST(MinimumBatch, ReturnsZeroWhenUndecidable)
{
    auto v = iidUniform(16, 13);
    // max_batch so large that fewer than 8 batches remain
    EXPECT_EQ(minimumUncorrelatedBatch(v, 4096, 1e-9), 0u);
}

TEST(Mser, NoTransientMeansNoTruncation)
{
    auto v = iidUniform(5000, 17);
    size_t d = mserTruncationPoint(v);
    EXPECT_LE(d, 250u); // at most a few percent trimmed
}

TEST(Mser, DetectsInitialTransient)
{
    // transient: first 500 observations drift from 10 to ~0, then
    // stationary noise around 0
    Rng rng(19);
    std::vector<double> v;
    for (int i = 0; i < 500; ++i)
        v.push_back(10.0 * (1.0 - i / 500.0) + rng.uniform(-0.5, 0.5));
    for (int i = 0; i < 4500; ++i)
        v.push_back(rng.uniform(-0.5, 0.5));
    size_t d = mserTruncationPoint(v);
    EXPECT_GE(d, 300u);
    EXPECT_LE(d, 900u);
    size_t d5 = mser5TruncationPoint(v);
    EXPECT_GE(d5, 250u);
    EXPECT_LE(d5, 1000u);
}

TEST(Mser, ShortSeriesReturnsZero)
{
    EXPECT_EQ(mserTruncationPoint({1.0, 2.0, 3.0}), 0u);
}

TEST(MserDeath, ZeroStride)
{
    auto v = iidUniform(100, 23);
    EXPECT_EXIT(mserTruncationPoint(v, 0), testing::ExitedWithCode(1),
                "stride");
}

} // namespace
} // namespace snoop
