/** Unit tests for stats/student_t. */

#include <gtest/gtest.h>

#include "stats/student_t.hh"

namespace snoop {
namespace {

TEST(StudentT, KnownTableValues)
{
    EXPECT_NEAR(studentTCritical(1, 0.95), 12.706, 1e-3);
    EXPECT_NEAR(studentTCritical(10, 0.95), 2.228, 1e-3);
    EXPECT_NEAR(studentTCritical(30, 0.95), 2.042, 1e-3);
    EXPECT_NEAR(studentTCritical(5, 0.90), 2.015, 1e-3);
    EXPECT_NEAR(studentTCritical(5, 0.99), 4.032, 1e-3);
}

TEST(StudentT, MonotoneDecreasingInDof)
{
    for (unsigned dof = 1; dof < 100; ++dof) {
        EXPECT_GE(studentTCritical(dof, 0.95),
                  studentTCritical(dof + 1, 0.95) - 1e-12)
            << "dof=" << dof;
    }
}

TEST(StudentT, MonotoneIncreasingInConfidence)
{
    for (unsigned dof : {1u, 5u, 20u, 100u}) {
        EXPECT_LT(studentTCritical(dof, 0.90),
                  studentTCritical(dof, 0.95));
        EXPECT_LT(studentTCritical(dof, 0.95),
                  studentTCritical(dof, 0.99));
    }
}

TEST(StudentT, ApproachesNormalQuantile)
{
    EXPECT_NEAR(studentTCritical(100000, 0.95), 1.960, 1e-2);
    EXPECT_NEAR(studentTCritical(100000, 0.90), 1.645, 1e-2);
    EXPECT_NEAR(studentTCritical(100000, 0.99), 2.576, 1e-2);
}

TEST(StudentT, LargeDofStillExceedsNormal)
{
    EXPECT_GT(studentTCritical(50, 0.95), 1.960);
    EXPECT_GT(studentTCritical(1000, 0.95), 1.960);
}

TEST(StudentT, UnsupportedConfidenceFallsBack)
{
    EXPECT_DOUBLE_EQ(studentTCritical(10, 0.80),
                     studentTCritical(10, 0.95));
}

TEST(StudentTDeath, ZeroDofPanics)
{
    EXPECT_DEATH(studentTCritical(0, 0.95), "dof");
}

} // namespace
} // namespace snoop
