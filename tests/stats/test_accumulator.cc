/** Unit tests for stats/accumulator. */

#include <cmath>

#include <gtest/gtest.h>

#include "random/rng.hh"
#include "stats/accumulator.hh"

namespace snoop {
namespace {

TEST(Accumulator, EmptyIsNeutral)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.stdError(), 0.0);
}

TEST(Accumulator, SingleValue)
{
    Accumulator a;
    a.add(5.0);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 5.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Accumulator, KnownSmallSample)
{
    // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4, sample var 32/7
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(x);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesCombinedStream)
{
    Rng r(3);
    Accumulator whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        double x = r.uniform(-5, 5);
        whole.add(x);
        (i < 400 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptySides)
{
    Accumulator a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b); // empty right side: no-op
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a); // empty left side: copies
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Accumulator, ResetClearsState)
{
    Accumulator a;
    a.add(10.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Accumulator, NumericallyStableAroundLargeOffset)
{
    // Welford should not lose the variance of tiny deviations around a
    // huge mean.
    Accumulator a;
    double base = 1e9;
    for (double d : {-1.0, 0.0, 1.0, -1.0, 0.0, 1.0})
        a.add(base + d);
    EXPECT_NEAR(a.mean(), base, 1e-3);
    EXPECT_NEAR(a.variance(), 0.8, 1e-6);
}

TEST(Accumulator, StdErrorShrinksWithSamples)
{
    Rng r(9);
    Accumulator small, large;
    for (int i = 0; i < 100; ++i)
        small.add(r.uniform());
    for (int i = 0; i < 10000; ++i)
        large.add(r.uniform());
    EXPECT_GT(small.stdError(), large.stdError());
    EXPECT_NEAR(large.stdError(),
                large.stddev() / std::sqrt(10000.0), 1e-12);
}

} // namespace
} // namespace snoop
