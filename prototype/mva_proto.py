#!/usr/bin/env python3
"""Prototype of the Vernon/Lazowska/Zahorjan ISCA'88 MVA model.

Used to pin down the reconstruction of the [VeHo86] derived-input
computations before committing to the C++ implementation. Fits a small
set of interpretation knobs against the paper's own MVA numbers in
Table 4.1 (a), (b), (c).
"""
import itertools, math

# Appendix A workloads: (p_private, p_sro, p_sw) per sharing level
SHARING = {1: (0.99, 0.01, 0.00), 5: (0.95, 0.03, 0.02), 20: (0.80, 0.15, 0.05)}

BASE = dict(
    tau=2.5, h_private=0.95, h_sro=0.95, h_sw=0.5,
    r_private=0.7, r_sw=0.5, amod_private=0.7, amod_sw=0.3,
    csupply_sro=0.95, csupply_sw=0.5, wb_csupply=0.3,
    rep_p=0.2, rep_sw=0.5,
)

# Paper MVA speedups, Table 4.1
NS = [1, 2, 4, 6, 8, 10, 15, 20, 100]
T41A = {1: [0.86, 1.68, 3.17, 4.33, 5.08, 5.49, 5.88, 5.98, 6.07],
        5: [0.855, 1.67, 3.12, 4.23, 4.93, 5.30, 5.63, 5.72, 5.79],
        20: [0.84, 1.61, 2.97, 3.97, 4.55, 4.83, 5.07, 5.12, 5.16]}
T41B = {1: [0.875, 1.73, 3.37, 4.82, 5.94, 6.59, 7.02, 7.09, 7.04],
        5: [0.87, 1.71, 3.30, 4.65, 5.68, 6.23, 6.59, 6.64, 6.60],
        20: [0.85, 1.63, 3.08, 4.22, 5.03, 5.40, 5.63, 5.66, 5.62]}
T41C = {1: [0.88, 1.75, 3.40, 4.90, 6.06, 6.83, 7.49, 7.58, 7.56],
        5: [0.88, 1.75, 3.40, 4.87, 6.06, 6.83, 7.46, 7.57, 7.57],
        20: [0.88, 1.74, 3.35, 4.75, 5.90, 6.70, 7.47, 7.64, 7.70]}


def derive(share, mods, knobs):
    """Compute derived model inputs for a sharing level and mod set."""
    w = dict(BASE)
    pp, psro, psw = SHARING[share]
    m1, m2, m3, m4 = ('1' in mods), ('2' in mods), ('3' in mods), ('4' in mods)
    rep_p = 0.3 if m1 else 0.2
    rep_sw = 0.5
    if m2 and m3:
        rep_sw = 0.7
    elif m2 or m3:
        rep_sw = 0.6
    h_sw = 0.95 if (m1 and m4) else w['h_sw']

    rp, rsw = w['r_private'], w['r_sw']
    hp, hsro = w['h_private'], w['h_sro']
    amp, amsw = w['amod_private'], w['amod_sw']

    PRH = pp * rp * hp
    PWHm = pp * (1 - rp) * hp * amp
    PWHu = pp * (1 - rp) * hp * (1 - amp)
    PRM = pp * rp * (1 - hp)
    PWM = pp * (1 - rp) * (1 - hp)
    SROH = psro * hsro
    SRM = psro * (1 - hsro)
    SWRH = psw * rsw * h_sw
    SWWHm = psw * (1 - rsw) * h_sw * amsw
    SWWHu = psw * (1 - rsw) * h_sw * (1 - amsw)
    SWRM = psw * rsw * (1 - h_sw)
    SWWM = psw * (1 - rsw) * (1 - h_sw)
    SWMiss = SWRM + SWWM

    p_local = PRH + PWHm + SROH + SWRH + SWWHm
    p_bc_priv = PWHu
    p_bc_sw = SWWHu
    if m4:
        # all write hits to non-exclusive sw blocks broadcast; with mod1 a
        # fraction (1 - csupply_sw) were loaded exclusive
        excl = (1 - w['csupply_sw']) if m1 else 0.0
        swwh = psw * (1 - rsw) * h_sw
        p_bc_sw = swwh * (1 - excl)
        p_local += SWWHm - (swwh - p_bc_sw) * 0  # keep accounting below
        # recompute p_local cleanly:
        p_local = PRH + PWHm + SROH + SWRH + swwh * excl
    if m1:
        p_local += p_bc_priv
        p_bc_priv = 0.0
    p_bc = p_bc_priv + p_bc_sw
    p_rr = PRM + PWM + SRM + SWRM + SWWM

    p_csupwb = (SWMiss * w['csupply_sw'] * w['wb_csupply']) / p_rr if p_rr else 0
    p_reqwb = ((PRM + PWM) * rep_p + SWMiss * rep_sw) / p_rr if p_rr else 0

    # Supply-source-dependent read transaction cost:
    #   Tm  = memory-supplied block read
    #   Tc  = cache-supplied block read (no main-memory latency)
    #   Twb = block write-back transaction
    Tm, Tc, Twb = knobs['Tm'], knobs['Tc'], knobs['Twb']
    csro, csw, wbc = w['csupply_sro'], w['csupply_sw'], w['wb_csupply']
    t_priv = Tm + rep_p * Twb
    t_sro = csro * Tc + (1 - csro) * Tm
    if m2:
        # dirty supplier sends the block directly (no memory update first)
        sup_dirty = Tc
    else:
        # dirty supplier flushes to memory, then memory supplies
        sup_dirty = Twb + Tm
    t_sw = (csw * (wbc * sup_dirty + (1 - wbc) * Tc) + (1 - csw) * Tm
            + rep_sw * Twb)
    t_read = ((PRM + PWM) * t_priv + SRM * t_sro + SWMiss * t_sw) / p_rr \
        if p_rr else 0

    # memory demand per request (block-writeback + bc words), for eq (12)
    mem_bc = 0.0 if m3 else p_bc
    if m4 and m3:
        mem_bc = 0.0
    elif m4:
        mem_bc = p_bc  # broadcast writes update memory
    mem_csup = 0.0 if m2 else p_csupwb
    mem_factor = mem_bc + p_rr * (mem_csup + p_reqwb)

    # cache interference inputs
    tot_bus = p_bc + p_rr
    shared_miss = SRM + SWMiss
    p_a = (shared_miss / tot_bus) * 0.5 if tot_bus else 0
    p_b = (p_bc_sw / tot_bus) * 0.5 if tot_bus else 0
    csup_frac = ((w['csupply_sro'] * SRM + w['csupply_sw'] * SWMiss) / shared_miss
                 if shared_miss else 0)
    return dict(p_local=p_local, p_bc=p_bc, p_rr=p_rr, t_read=t_read,
                p_csupwb=p_csupwb, p_reqwb=p_reqwb, mem_factor=mem_factor,
                p_a=p_a, p_b=p_b, csup_frac=csup_frac,
                rep_term=rep_p * pp + rep_sw * psw,
                wb_csupply=w['wb_csupply'], tau=w['tau'])


def solve(N, d, knobs, iters=200, tol=1e-10):
    tau = d['tau']
    Tsup, Twrite, dmem = 1.0, 1.0, 3.0
    wbus = wmem = 0.0
    R = tau + Tsup
    for _ in range(iters):
        # cache interference
        if N > 1:
            Qbus = (N - 1) * (d['p_bc'] * (wbus + wmem + Twrite)
                              + d['p_rr'] * (wbus + d['t_read'])) / R
            pprime = d['p_b'] + d['p_a'] * min(1.0, 2.0 / (N - 1)) * d['csup_frac'] \
                * (1 - d['rep_term'])
            p = d['p_a'] + d['p_b']
            n_int = p * (1 - pprime ** max(Qbus, 0)) / (1 - pprime) if pprime < 1 else 0
            t_int = 1.0 + (d['p_a'] / p if p else 0) * min(1.0, 2.0 / (N - 1)) \
                * d['csup_frac'] * (4.0 + (d['wb_csupply']) * 4.0)
        else:
            Qbus, n_int, t_int = 0.0, 0.0, 0.0

        Rlocal = d['p_local'] * n_int * t_int
        Rbc = d['p_bc'] * (wbus + wmem + Twrite)
        Rrr = d['p_rr'] * (wbus + d['t_read'])
        Rnew = tau + Rlocal + Rbc + Rrr + Tsup

        Ubus = N * (d['p_bc'] * (wmem + Twrite) + d['p_rr'] * d['t_read']) / Rnew
        Ubus = min(Ubus, 0.9999 * N)
        pbusy_bus = max(0.0, (Ubus - Ubus / N) / (1 - Ubus / N)) if N > 1 else 0.0
        pbusy_bus = min(pbusy_bus, 0.9999)
        tb = d['p_bc'] * (Twrite + wmem) + d['p_rr'] * d['t_read']
        tot = d['p_bc'] + d['p_rr']
        tbus = tb / tot if tot else 0
        tres = (d['p_bc'] * (Twrite + wmem) / tb * (Twrite + wmem) / 2
                + d['p_rr'] * d['t_read'] / tb * d['t_read'] / 2) if tb else 0
        wbus = max(0.0, (Qbus - pbusy_bus)) * tbus + pbusy_bus * tres if N > 1 else 0.0

        Umem = N * 0.25 * d['mem_factor'] * dmem / Rnew
        Umem = min(Umem, 0.9999 * N)
        pbusy_mem = max(0.0, (Umem - Umem / N) / (1 - Umem / N)) if N > 1 else 0.0
        wmem = pbusy_mem * dmem / 2

        if abs(Rnew - R) < tol:
            R = Rnew
            break
        R = Rnew
    return N * (tau + Tsup) / R


def table_err(knobs, verbose=False):
    err2, n, maxe = 0.0, 0, 0.0
    for mods, tab in [('', T41A), ('1', T41B), ('14', T41C)]:
        for share in (1, 5, 20):
            d = derive(share, mods, knobs)
            for i, N in enumerate(NS):
                s = solve(N, d, knobs)
                ref = tab[share][i]
                e = (s - ref) / ref
                err2 += e * e; n += 1; maxe = max(maxe, abs(e))
                if verbose:
                    print(f"mods={mods or '-':>2} share={share:>2}% N={N:>3} "
                          f"mva={s:6.3f} paper={ref:6.3f} err={100*e:+6.2f}%")
    return math.sqrt(err2 / n), maxe


if __name__ == '__main__':
    best = None
    for Tm in [7.0, 7.5, 8.0, 8.5, 9.0, 9.5, 10.0]:
        for Tc in [1.0, 2.0, 3.0, 4.0, 5.0]:
            for Twb in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]:
                k = dict(Tm=Tm, Tc=Tc, Twb=Twb)
                rms, mx = table_err(k)
                if best is None or rms < best[0]:
                    best = (rms, mx, k)
    rms, mx, k = best
    print(f"BEST knobs={k} rms={100*rms:.2f}% max={100*mx:.2f}%")
    table_err(k, verbose=True)
