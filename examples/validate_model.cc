/**
 * @file
 * Model validation: run the mean-value model and the detailed
 * discrete-event simulator on the same configuration and compare -
 * the Section 4.2 methodology with the simulator in the GTPN's role.
 *
 *   ./validate_model --protocol=WriteOnce --sharing=5 --max-n=10
 */

#include <cstdio>

#include "core/analyzer.hh"
#include "observe/trace.hh"
#include "core/validation.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

using namespace snoop;

int
main(int argc, char **argv)
{
    CliParser cli("validate_model",
                  "compare MVA estimates against detailed simulation");
    cli.addOption("protocol", "WriteOnce", "catalog name or mod string");
    cli.addOption("sharing", "5", "sharing level in percent (1, 5, 20)");
    cli.addOption("max-n", "10", "largest processor count to compare");
    cli.addOption("requests", "300000", "measured requests per run");
    cli.addOption("seed", "1", "simulation seed");
    cli.parse(argc, argv);

    SharingLevel level;
    switch (cli.getInt("sharing")) {
      case 1:
        level = SharingLevel::OnePercent;
        break;
      case 5:
        level = SharingLevel::FivePercent;
        break;
      case 20:
        level = SharingLevel::TwentyPercent;
        break;
      default:
        fatal("--sharing must be 1, 5, or 20");
    }
    auto protocol = findProtocol(cli.get("protocol"));
    if (!protocol)
        fatal("unknown protocol '%s'", cli.get("protocol").c_str());

    ValidationConfig cfg;
    cfg.workload = presets::appendixA(level);
    cfg.protocol = *protocol;
    cfg.seed = static_cast<uint64_t>(cli.getInt("seed"));
    cfg.measuredRequests =
        static_cast<uint64_t>(cli.getInt("requests"));
    cfg.ns.clear();
    for (unsigned n : {1u, 2u, 4u, 6u, 8u, 10u, 15u, 20u}) {
        if (n <= static_cast<unsigned>(cli.getInt("max-n")))
            cfg.ns.push_back(n);
    }

    auto points = validate(cfg);
    auto table = comparisonTable(
        points, strprintf("%s, %s sharing: MVA vs detailed simulation",
                          protocol->name().c_str(),
                          to_string(level).c_str()));
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nmax |relative error| = %s  (paper reports <= 2.6%% "
                "for Write-Once vs its GTPN baseline, <= 4.25%% for "
                "enhancement 1, <= 5%% under stress)\n",
                formatPercent(maxAbsError(points), 2).c_str());

    int inside = 0;
    for (const auto &p : points)
        inside += p.withinCi();
    std::printf("MVA inside the simulator's 95%% CI at %d of %zu "
                "points\n", inside, points.size());
    observeFinalize();
    return 0;
}
