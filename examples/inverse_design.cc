/**
 * @file
 * Inverse design: instead of asking "what speedup does this machine
 * deliver?", ask "what must the workload look like to deliver a
 * target speedup?" - e.g. how good the shared-writable hit rate must
 * be before a protocol reaches 6x on 20 processors. Bisection over
 * the forward model; each query costs microseconds.
 *
 *   ./inverse_design --protocol=Illinois --param=h_sw --target=6.0 \
 *       --n=20 --sharing=20
 */

#include <cstdio>

#include "core/solve_for.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

using namespace snoop;

int
main(int argc, char **argv)
{
    CliParser cli("inverse_design",
                  "find the parameter value achieving a target speedup");
    cli.addOption("protocol", "Illinois", "catalog name or mod string");
    cli.addOption("param", "h_sw", "parameter to solve for");
    cli.addOption("target", "6.0", "target speedup");
    cli.addOption("n", "20", "number of processors");
    cli.addOption("sharing", "20", "sharing level in percent (1, 5, 20)");
    cli.addOption("lo", "0.01", "search interval lower end");
    cli.addOption("hi", "0.99", "search interval upper end");
    cli.parse(argc, argv);

    SolveForQuery q;
    switch (cli.getInt("sharing")) {
      case 1:
        q.base = presets::appendixA(SharingLevel::OnePercent);
        break;
      case 5:
        q.base = presets::appendixA(SharingLevel::FivePercent);
        break;
      case 20:
        q.base = presets::appendixA(SharingLevel::TwentyPercent);
        break;
      default:
        fatal("--sharing must be 1, 5, or 20");
    }
    auto protocol = findProtocol(cli.get("protocol"));
    if (!protocol)
        fatal("unknown protocol '%s'", cli.get("protocol").c_str());
    q.protocol = *protocol;
    q.n = static_cast<unsigned>(cli.getInt("n"));
    q.paramName = cli.get("param");
    q.set = findParamSetter(q.paramName);
    if (!q.set)
        fatal("unknown parameter '%s'", q.paramName.c_str());
    q.lo = cli.getDouble("lo");
    q.hi = cli.getDouble("hi");
    q.targetSpeedup = cli.getDouble("target");

    auto r = solveForParameter(q);
    std::printf("%s on %u processors: speedup ranges from %.3f (at "
                "%s = %g) to %.3f (at %s = %g)\n",
                q.protocol.name().c_str(), q.n, r.speedupAtLo,
                q.paramName.c_str(), q.lo, r.speedupAtHi,
                q.paramName.c_str(), q.hi);
    if (r.value) {
        std::printf("target speedup %.3f is reached at %s = %.4f\n",
                    q.targetSpeedup, q.paramName.c_str(), *r.value);
    } else {
        std::printf("target speedup %.3f is NOT attainable by varying "
                    "%s alone on [%g, %g]\n", q.targetSpeedup,
                    q.paramName.c_str(), q.lo, q.hi);
    }
    return 0;
}
