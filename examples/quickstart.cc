/**
 * @file
 * Quickstart: analyze one snooping-cache protocol configuration with
 * the mean-value model and print the full performance report.
 *
 *   ./quickstart --protocol=Illinois --n=16 --sharing=5
 *   ./quickstart --protocol=14 --n=100 --sharing=20
 */

#include <cstdio>

#include "core/analyzer.hh"
#include "observe/trace.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace snoop;

namespace {

WorkloadParams
workloadForSharing(long sharing)
{
    switch (sharing) {
      case 1:
        return presets::appendixA(SharingLevel::OnePercent);
      case 5:
        return presets::appendixA(SharingLevel::FivePercent);
      case 20:
        return presets::appendixA(SharingLevel::TwentyPercent);
      default:
        fatal("--sharing must be 1, 5, or 20 (Appendix A levels)");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("quickstart",
                  "analyze one protocol with the ISCA'88 MVA model");
    cli.addOption("protocol", "WriteOnce",
                  "catalog name (WriteOnce, Synapse, Illinois, Berkeley, "
                  "Dragon, RWB, WriteThrough) or mod string like '14'");
    cli.addOption("n", "16", "number of processors");
    cli.addOption("sharing", "5", "sharing level in percent (1, 5, 20)");
    cli.addOption("tau", "2.5", "mean execution cycles between requests");
    cli.parse(argc, argv);

    WorkloadParams workload = workloadForSharing(cli.getInt("sharing"));
    workload.tau = cli.getDouble("tau");
    unsigned n = static_cast<unsigned>(cli.getInt("n"));

    Analyzer analyzer;
    MvaResult r = analyzer.analyze(cli.get("protocol"), workload, n);

    std::printf("protocol: %s", r.inputs.protocol.name().c_str());
    auto names = namesForConfig(r.inputs.protocol);
    if (!names.empty())
        std::printf("  (a.k.a. %s)", names.front().c_str());
    std::printf("\nworkload: %g%% shared references, tau = %g\n\n",
                (workload.pSro + workload.pSw) * 100.0, workload.tau);

    Table t({"measure", "value"});
    t.setAlign(0, Align::Left);
    t.addRow({"speedup", formatDouble(r.speedup, 3)});
    t.addRow({"processing power", formatDouble(r.processingPower, 3)});
    t.addRow({"response time R (cycles)",
              formatDouble(r.responseTime, 3)});
    t.addRow({"bus utilization", formatPercent(r.busUtil, 1)});
    t.addRow({"mean bus wait (cycles)", formatDouble(r.wBus, 3)});
    t.addRow({"memory-module utilization", formatPercent(r.memUtil, 1)});
    t.addRow({"mean memory wait (cycles)", formatDouble(r.wMem, 3)});
    t.addRow({"snoop interference / local req",
              formatDouble(r.rLocal, 4)});
    t.addRow({"solver iterations", strprintf("%d", r.iterations)});
    std::fputs(t.render().c_str(), stdout);

    std::printf("\nrequest mix: %.1f%% local, %.1f%% broadcast, "
                "%.1f%% remote read (t_read = %.2f cycles)\n",
                r.inputs.pLocal * 100.0, r.inputs.pBc * 100.0,
                r.inputs.pRr * 100.0, r.inputs.tRead);
    observeFinalize();
    return 0;
}
