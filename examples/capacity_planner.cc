/**
 * @file
 * Capacity planning: for each catalog protocol, find the bus
 * saturation point and the speedup it delivers there - the
 * "architectural trade-off" workflow the paper's efficiency makes
 * interactive (a full design-space scan takes milliseconds).
 *
 *   ./capacity_planner --sharing=5 --target=0.95
 */

#include <cstdio>

#include "core/analyzer.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace snoop;

int
main(int argc, char **argv)
{
    CliParser cli("capacity_planner",
                  "find per-protocol bus saturation points");
    cli.addOption("sharing", "5", "sharing level in percent (1, 5, 20)");
    cli.addOption("target", "0.95", "bus-utilization saturation target");
    cli.parse(argc, argv);

    SharingLevel level;
    switch (cli.getInt("sharing")) {
      case 1:
        level = SharingLevel::OnePercent;
        break;
      case 5:
        level = SharingLevel::FivePercent;
        break;
      case 20:
        level = SharingLevel::TwentyPercent;
        break;
      default:
        fatal("--sharing must be 1, 5, or 20");
    }
    double target = cli.getDouble("target");
    WorkloadParams workload = presets::appendixA(level);

    Analyzer analyzer;
    std::printf("Bus saturation analysis, %s sharing, target "
                "utilization %s:\n\n", to_string(level).c_str(),
                formatPercent(target, 0).c_str());

    Table t({"protocol", "mods", "N at saturation", "speedup there",
             "asymptotic speedup"});
    t.setAlign(0, Align::Left);
    t.setAlign(1, Align::Left);
    unsigned failures = 0;
    for (const auto &p : protocolCatalog()) {
        std::string mods = p.config.modString();
        // One failed probe is one error row, not a dead planner: the
        // remaining protocols still get their saturation analysis.
        auto knee_or = analyzer.trySaturationPoint(p.config, workload,
                                                  target);
        if (!knee_or) {
            warn("%s: %s", p.name.c_str(),
                 knee_or.error().describe().c_str());
            ++failures;
            t.addRow({p.name, mods.empty() ? "-" : mods,
                      "error", "-", "-"});
            continue;
        }
        unsigned knee = knee_or.value();
        double at_knee = knee
            ? analyzer.analyze(p.config, workload, knee).speedup : 0.0;
        double asym =
            analyzer.analyze(p.config, workload, 2048).speedup;
        t.addRow({p.name, mods.empty() ? "-" : mods,
                  knee ? strprintf("%u", knee) : std::string("never"),
                  knee ? formatDouble(at_knee, 2) : std::string("-"),
                  formatDouble(asym, 2)});
    }
    std::fputs(t.render().c_str(), stdout);
    if (failures > 0)
        std::printf("\n%u protocol(s) failed; see warnings above.\n",
                    failures);
    std::printf("\nThe asymptotic column is (tau + T_supply) / "
                "per-request bus demand - adding processors past the "
                "knee buys almost nothing (Table 4.1's N=100 column).\n");
    return 0;
}
