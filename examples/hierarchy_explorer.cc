/**
 * @file
 * Hierarchy exploration: apply the customized-MVA technique to the
 * two-level cache/bus machines of [Wils87] (the paper's future-work
 * pointer). Finds, for a given processor budget, the cluster
 * partitioning that maximizes speedup, and shows how cluster caching
 * moves the answer.
 *
 *   ./hierarchy_explorer --budget=64 --protocol=1 --cluster-share=0.5
 */

#include <cstdio>

#include "mva/hierarchical.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strutil.hh"
#include "util/table.hh"
#include "protocol/catalog.hh"

using namespace snoop;

int
main(int argc, char **argv)
{
    CliParser cli("hierarchy_explorer",
                  "two-level bus hierarchy design exploration");
    cli.addOption("budget", "64", "total processors (power of two)");
    cli.addOption("protocol", "1", "protocol name or mod string");
    cli.addOption("sharing", "5", "sharing level in percent (1, 5, 20)");
    cli.addOption("cluster-share", "0.5",
                  "fraction of would-be-remote transactions satisfied "
                  "by the cluster cache");
    cli.parse(argc, argv);

    unsigned budget = static_cast<unsigned>(cli.getInt("budget"));
    if (budget == 0 || (budget & (budget - 1)) != 0)
        fatal("--budget must be a power of two");
    SharingLevel level;
    switch (cli.getInt("sharing")) {
      case 1:
        level = SharingLevel::OnePercent;
        break;
      case 5:
        level = SharingLevel::FivePercent;
        break;
      case 20:
        level = SharingLevel::TwentyPercent;
        break;
      default:
        fatal("--sharing must be 1, 5, or 20");
    }
    auto protocol = findProtocol(cli.get("protocol"));
    if (!protocol)
        fatal("unknown protocol '%s'", cli.get("protocol").c_str());
    double share = cli.getDouble("cluster-share");

    auto d = DerivedInputs::compute(presets::appendixA(level), *protocol);

    std::printf("Partitioning %u processors (%s, %s sharing, cluster "
                "cache share %.0f%%):\n\n", budget,
                protocol->name().c_str(), to_string(level).c_str(),
                share * 100.0);

    Table t({"clusters x size", "speedup", "U_local", "U_global",
             "bottleneck"});
    double best = 0.0;
    std::string best_shape;
    for (unsigned clusters = 1; clusters <= budget; clusters *= 2) {
        unsigned per = budget / clusters;
        auto cfg = hierarchicalFromFlat(d, clusters, per, share);
        auto r = solveHierarchical(
            cfg, {.onNonConvergence = NonConvergencePolicy::Warn});
        const char *bottleneck =
            r.localBusUtil > r.globalBusUtil ? "local buses"
                                             : "global bus";
        t.addRow({strprintf("%ux%u", clusters, per),
                  formatDouble(r.speedup, 2),
                  formatPercent(r.localBusUtil, 1),
                  formatPercent(r.globalBusUtil, 1), bottleneck});
        if (r.speedup > best) {
            best = r.speedup;
            best_shape = strprintf("%ux%u", clusters, per);
        }
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\nbest partitioning: %s (speedup %.2f)\n",
                best_shape.c_str(), best);
    std::printf("each design point above solved in microseconds - the "
                "whole exploration is interactive, which is the "
                "paper's thesis.\n");
    return 0;
}
