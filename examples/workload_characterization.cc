/**
 * @file
 * Closing the methodological loop the paper's conclusion calls for
 * ("all that is needed are workload measurement studies to aid in the
 * assignment of parameter values"):
 *
 *  1. run the trace-driven simulator, in which hit rates, sharing, and
 *     write-back probabilities *emerge* from synthetic address streams
 *     over real set-associative caches;
 *  2. extract those measured workload parameters;
 *  3. feed them into the mean-value model and compare its speedup
 *     prediction against the trace simulation itself.
 *
 *   ./workload_characterization --n=8 --sets=64 --ways=2
 */

#include <cstdio>

#include "core/analyzer.hh"
#include "sim/trace_sim.hh"
#include "util/cli.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace snoop;

int
main(int argc, char **argv)
{
    CliParser cli("workload_characterization",
                  "measure workload parameters in a trace-driven "
                  "simulation and feed them back into the MVA model");
    cli.addOption("n", "8", "number of processors");
    cli.addOption("sets", "64", "cache sets");
    cli.addOption("ways", "2", "cache associativity");
    cli.addOption("protocol", "WriteOnce", "protocol to run");
    cli.addOption("requests", "200000", "measured requests");
    cli.parse(argc, argv);

    TraceSimConfig cfg;
    cfg.numProcessors = static_cast<unsigned>(cli.getInt("n"));
    cfg.workload = presets::appendixA(SharingLevel::FivePercent);
    cfg.protocol = *findProtocol(cli.get("protocol"));
    cfg.cacheSets = static_cast<unsigned>(cli.getInt("sets"));
    cfg.cacheWays = static_cast<unsigned>(cli.getInt("ways"));
    cfg.measuredRequests = static_cast<uint64_t>(cli.getInt("requests"));

    std::printf("Step 1: trace-driven simulation (%u processors, "
                "%u-set %u-way caches)...\n\n", cfg.numProcessors,
                cfg.cacheSets, cfg.cacheWays);
    TraceSimResult trace = simulateTrace(cfg);

    Table m({"measured parameter", "value", "Appendix A assumed"});
    m.setAlign(0, Align::Left);
    m.addRow({"h_private", formatDouble(trace.measured.hitPrivate, 3),
              "0.95"});
    m.addRow({"h_sro", formatDouble(trace.measured.hitSro, 3), "0.95"});
    m.addRow({"h_sw", formatDouble(trace.measured.hitSw, 3), "0.5"});
    m.addRow({"amod_private",
              formatDouble(trace.measured.amodPrivate, 3), "0.7"});
    m.addRow({"amod_sw", formatDouble(trace.measured.amodSw, 3), "0.3"});
    m.addRow({"csupply (shared)",
              formatDouble(trace.measured.csupplyShared, 3),
              "0.95 sro / 0.5 sw"});
    m.addRow({"rep (any victim dirty)",
              formatDouble(trace.measured.repAll, 3), "0.2 / 0.5"});
    std::fputs(m.render().c_str(), stdout);

    // Step 2: build a workload from the measured values.
    WorkloadParams measured = cfg.workload;
    measured.hPrivate = trace.measured.hitPrivate;
    measured.hSro = trace.measured.hitSro;
    measured.hSw = trace.measured.hitSw;
    measured.amodPrivate = trace.measured.amodPrivate;
    measured.amodSw = trace.measured.amodSw;
    measured.csupplySro = trace.measured.csupplyShared;
    measured.csupplySw = trace.measured.csupplyShared;
    measured.repP = trace.measured.repAll;
    measured.repSw = trace.measured.repAll;

    Analyzer analyzer;
    auto mva = analyzer.analyze(cfg.protocol, measured,
                                cfg.numProcessors);

    std::printf("\nStep 2: MVA with the measured parameters:\n"
                "  MVA speedup        : %.3f\n"
                "  trace-sim speedup  : %.3f\n"
                "  difference         : %s\n",
                mva.speedup, trace.speedup,
                formatPercent((mva.speedup - trace.speedup) /
                                  trace.speedup, 2).c_str());
    std::printf("\nThe residual gap reflects what the probabilistic "
                "workload model cannot express (temporal correlation in "
                "the address streams), not the interference model - "
                "compare validate_model, where the workloads match by "
                "construction and the gap shrinks to a few percent.\n");
    return 0;
}
