/**
 * @file
 * Design-space exploration over all 16 combinations of the four
 * Write-Once modifications (Section 2.2) - the "explore a large
 * design space quickly and interactively" use case of the paper's
 * conclusion, in two modes:
 *
 * Rank mode (default): evaluate the 16 combinations at one system
 * size and sharing level, ranked by speedup:
 *
 *   ./design_space --n=20 --sharing=5
 *
 * Sweep mode (--param): sweep one workload parameter across the full
 * 16-protocol grid - the Table 4-1-sized mega-sweep - with the
 * crash-safety controls of docs/SHARDING.md:
 *
 *   ./design_space --param=h_sw --from=0.1 --to=0.7 --steps=7 \
 *       --shard=1/4 --checkpoint=shard1.ckpt --cell-csv=shard1.csv
 *
 * --shard=i/N evaluates one deterministic slice of the cell grid;
 * --checkpoint makes the run resumable (rerun the same command after
 * a crash and it continues from the last commit, with byte-identical
 * final output); --chaos-kill turns the sweep.checkpoint fault site's
 * injected abort into a real SIGKILL, which is how tools/run_chaos.sh
 * proves the resume path against genuine process death.
 */

#include <csignal>
#include <cstdio>

#include "core/analyzer.hh"
#include "core/sweep.hh"
#include "observe/trace.hh"
#include "util/atomic_file.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace snoop;

namespace {

WorkloadParams
workloadForSharing(int sharing)
{
    switch (sharing) {
      case 1:
        return presets::appendixA(SharingLevel::OnePercent);
      case 5:
        return presets::appendixA(SharingLevel::FivePercent);
      case 20:
        return presets::appendixA(SharingLevel::TwentyPercent);
      default:
        fatal("--sharing must be 1, 5, or 20");
    }
}

void
writeAtomically(const std::string &path, const std::string &content)
{
    AtomicFile out(path);
    if (!out.ok())
        fatal("cannot open '%s' for writing", path.c_str());
    out.stream() << content;
    if (auto ok = out.commit(); !ok)
        fatal("%s", ok.error().describe().c_str());
    std::printf("wrote %s\n", path.c_str());
}

/** The sharded, checkpointed, chaos-killable mega-sweep. */
int
sweepMode(const CliParser &cli)
{
    SweepSpec spec;
    spec.base = workloadForSharing(cli.getInt("sharing"));
    spec.paramName = cli.get("param");
    spec.set = findParamSetter(spec.paramName);
    if (!spec.set) {
        fatal("unknown parameter '%s' (try sensitivity_study --list)",
              spec.paramName.c_str());
    }
    double from = cli.getDouble("from");
    double to = cli.getDouble("to");
    long steps = cli.getInt("steps");
    if (steps < 2)
        fatal("--steps must be at least 2");
    for (long i = 0; i < steps; ++i) {
        spec.values.push_back(
            from + (to - from) * static_cast<double>(i) /
                static_cast<double>(steps - 1));
    }
    // The full Section 2.2 design space: all 16 mod combinations, in
    // index order, as the grid's protocol columns.
    for (unsigned idx = 0; idx < 16; ++idx)
        spec.protocols.push_back(ProtocolConfig::fromIndex(idx));
    spec.n = static_cast<unsigned>(cli.getInt("n"));

    std::string shard = cli.get("shard");
    size_t slash = shard.find('/');
    long shard_index = 0, shard_count = 0;
    if (slash == std::string::npos ||
        !parseInt(shard.substr(0, slash), shard_index) ||
        !parseInt(shard.substr(slash + 1), shard_count) ||
        shard_index < 0 || shard_count < 1) {
        fatal("--shard must look like i/N, e.g. 1/4");
    }
    spec.shard.index = static_cast<size_t>(shard_index);
    spec.shard.count = static_cast<size_t>(shard_count);
    spec.checkpointPath = cli.get("checkpoint");
    spec.checkpointEvery =
        static_cast<size_t>(cli.getInt("checkpoint-every"));

    auto res = tryRunSweep(spec);
    if (!res) {
        const SolveError &err = res.error();
        if (cli.getFlag("chaos-kill") &&
            err.code == SolveErrorCode::InjectedFault &&
            err.site == "sweep.checkpoint") {
            // The chaos harness's crash: the checkpoint this error
            // refers to is already committed and durable, so dying
            // without any cleanup is exactly the preemption/power-cut
            // scenario the resume path must survive.
            warn("%s", err.describe().c_str());
            ::raise(SIGKILL);
        }
        fatal("%s", err.describe().c_str());
    }

    std::fputs(res.value().table().render().c_str(), stdout);
    if (res.value().failureCount() > 0) {
        std::printf("\n%zu failed cells:\n%s\n",
                    res.value().failureCount(),
                    res.value().failureSummary().c_str());
    }
    if (spec.shard.isWhole()) {
        auto winners = res.value().tryWinners();
        if (!winners)
            fatal("%s", winners.error().describe().c_str());
        std::printf("\nwinners by %s value:\n", spec.paramName.c_str());
        for (size_t v = 0; v < winners.value().size(); ++v) {
            size_t w = winners.value()[v];
            std::printf("  %s=%s: %s\n", spec.paramName.c_str(),
                        formatCompact(spec.values[v], 4).c_str(),
                        w == SweepResult::kNoWinner
                            ? "(all cells failed)"
                            : spec.protocols[w].name().c_str());
        }
    }
    std::string csv_path = cli.get("csv");
    if (!csv_path.empty())
        writeAtomically(csv_path, res.value().csv());
    std::string cell_csv_path = cli.get("cell-csv");
    if (!cell_csv_path.empty())
        writeAtomically(cell_csv_path, res.value().cellCsv());
    observeFinalize();
    return 0;
}

/** The original interactive ranking at one design point. */
int
rankMode(const CliParser &cli)
{
    unsigned n = static_cast<unsigned>(cli.getInt("n"));
    WorkloadParams workload = workloadForSharing(cli.getInt("sharing"));

    Analyzer analyzer;
    auto ranked = analyzer.rankDesignSpace(workload, n);

    std::printf("All 16 Write-Once modification combinations, N=%u, "
                "%d%% sharing, ranked by speedup:\n\n", n,
                cli.getInt("sharing"));

    Table t({"rank", "mods", "known as", "speedup", "bus util",
             "t_read"});
    t.setAlign(1, Align::Left);
    t.setAlign(2, Align::Left);
    int rank = 1;
    for (const auto &r : ranked) {
        auto names = namesForConfig(r.inputs.protocol);
        std::string mods = r.inputs.protocol.modString();
        t.addRow({strprintf("%d", rank++),
                  mods.empty() ? "-" : mods,
                  names.empty() ? "" : names.front(),
                  formatDouble(r.speedup, 3),
                  formatPercent(r.busUtil, 1),
                  formatDouble(r.inputs.tRead, 2)});
    }
    std::fputs(t.render().c_str(), stdout);

    std::printf("\nReading the table: mod 1 (exclusive-on-miss) "
                "separates the top half from the bottom half, mod 4 "
                "(broadcast update) adds the next tier, and mods 2/3 "
                "shuffle within tiers - the Section 4.1 conclusions.\n");
    observeFinalize();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("design_space",
                  "rank or sweep all 16 modification combinations");
    cli.addOption("n", "20", "number of processors");
    cli.addOption("sharing", "5", "sharing level in percent (1, 5, 20)");
    cli.addOption("param", "",
                  "sweep this workload parameter across the 16-protocol "
                  "grid instead of ranking one point");
    cli.addOption("from", "0.1", "sweep mode: first swept value");
    cli.addOption("to", "0.7", "sweep mode: last swept value");
    cli.addOption("steps", "7", "sweep mode: number of swept values");
    cli.addOption("shard", "0/1",
                  "sweep mode: evaluate slice i/N of the cell grid");
    cli.addOption("checkpoint", "",
                  "sweep mode: crash-safe progress file; rerun the "
                  "same command to resume");
    cli.addOption("checkpoint-every", "8",
                  "sweep mode: cells per checkpoint commit");
    cli.addOption("csv", "", "sweep mode: write the value-grid CSV here");
    cli.addOption("cell-csv", "",
                  "sweep mode: write the per-cell long-form CSV here");
    cli.addFlag("chaos-kill",
                "sweep mode: SIGKILL the process when the armed "
                "sweep.checkpoint fault fires (tools/run_chaos.sh)");
    cli.parse(argc, argv);

    return cli.get("param").empty() ? rankMode(cli) : sweepMode(cli);
}
