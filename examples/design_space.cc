/**
 * @file
 * Design-space exploration: evaluate all 16 combinations of the four
 * Write-Once modifications (Section 2.2) at a given system size and
 * sharing level, ranked by speedup - the "explore a large design space
 * quickly and interactively" use case of the paper's conclusion.
 *
 *   ./design_space --n=20 --sharing=5
 */

#include <cstdio>

#include "core/analyzer.hh"
#include "observe/trace.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace snoop;

int
main(int argc, char **argv)
{
    CliParser cli("design_space",
                  "rank all 16 modification combinations by speedup");
    cli.addOption("n", "20", "number of processors");
    cli.addOption("sharing", "5", "sharing level in percent (1, 5, 20)");
    cli.parse(argc, argv);

    SharingLevel level;
    switch (cli.getInt("sharing")) {
      case 1:
        level = SharingLevel::OnePercent;
        break;
      case 5:
        level = SharingLevel::FivePercent;
        break;
      case 20:
        level = SharingLevel::TwentyPercent;
        break;
      default:
        fatal("--sharing must be 1, 5, or 20");
    }
    unsigned n = static_cast<unsigned>(cli.getInt("n"));
    WorkloadParams workload = presets::appendixA(level);

    Analyzer analyzer;
    auto ranked = analyzer.rankDesignSpace(workload, n);

    std::printf("All 16 Write-Once modification combinations, N=%u, "
                "%s sharing, ranked by speedup:\n\n", n,
                to_string(level).c_str());

    Table t({"rank", "mods", "known as", "speedup", "bus util",
             "t_read"});
    t.setAlign(1, Align::Left);
    t.setAlign(2, Align::Left);
    int rank = 1;
    for (const auto &r : ranked) {
        auto names = namesForConfig(r.inputs.protocol);
        std::string mods = r.inputs.protocol.modString();
        t.addRow({strprintf("%d", rank++),
                  mods.empty() ? "-" : mods,
                  names.empty() ? "" : names.front(),
                  formatDouble(r.speedup, 3),
                  formatPercent(r.busUtil, 1),
                  formatDouble(r.inputs.tRead, 2)});
    }
    std::fputs(t.render().c_str(), stdout);

    std::printf("\nReading the table: mod 1 (exclusive-on-miss) "
                "separates the top half from the bottom half, mod 4 "
                "(broadcast update) adds the next tier, and mods 2/3 "
                "shuffle within tiers - the Section 4.1 conclusions.\n");
    observeFinalize();
    return 0;
}
