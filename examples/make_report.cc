/**
 * @file
 * Generate a self-contained markdown analysis report for one protocol
 * configuration - workload, derived model inputs, predicted speedups,
 * and optional validation against the detailed simulator.
 *
 *   ./make_report --protocol=Berkeley --sharing=20 \
 *       --validate-up-to=8 --out=berkeley.md
 */

#include <cstdio>

#include "core/report.hh"
#include "protocol/catalog.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

using namespace snoop;

int
main(int argc, char **argv)
{
    CliParser cli("make_report",
                  "write a markdown analysis report for a protocol");
    cli.addOption("protocol", "WriteOnce", "catalog name or mod string");
    cli.addOption("sharing", "5", "sharing level in percent (1, 5, 20)");
    cli.addOption("validate-up-to", "0",
                  "also simulate system sizes up to this N (0 = skip)");
    cli.addOption("requests", "200000",
                  "measured requests per validation run");
    cli.addOption("out", "", "output file (default: stdout)");
    cli.parse(argc, argv);

    ReportSpec spec;
    switch (cli.getInt("sharing")) {
      case 1:
        spec.workload = presets::appendixA(SharingLevel::OnePercent);
        break;
      case 5:
        spec.workload = presets::appendixA(SharingLevel::FivePercent);
        break;
      case 20:
        spec.workload = presets::appendixA(SharingLevel::TwentyPercent);
        break;
      default:
        fatal("--sharing must be 1, 5, or 20");
    }
    auto protocol = findProtocol(cli.get("protocol"));
    if (!protocol)
        fatal("unknown protocol '%s'", cli.get("protocol").c_str());
    spec.protocol = *protocol;
    spec.title = strprintf("%s at %d%% sharing",
                           protocol->name().c_str(),
                           cli.getInt("sharing"));
    spec.validateUpTo =
        static_cast<unsigned>(cli.getInt("validate-up-to"));
    spec.measuredRequests =
        static_cast<uint64_t>(cli.getInt("requests"));

    std::string out = cli.get("out");
    if (out.empty()) {
        std::fputs(generateReport(spec).c_str(), stdout);
    } else {
        writeReport(spec, out);
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}
