/**
 * @file
 * Sensitivity study: sweep any workload parameter across a range and
 * compare protocols, printing the table and optionally a CSV - the
 * paper's "all that is needed are workload measurement studies to aid
 * in the assignment of parameter values" invites exactly this kind of
 * what-if exploration.
 *
 *   ./sensitivity_study --param=amod_private --from=0.5 --to=0.95 \
 *       --steps=10 --protocols=1,2 --n=10
 */

#include <cstdio>

#include "core/sweep.hh"
#include "observe/trace.hh"
#include "util/atomic_file.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

using namespace snoop;

int
main(int argc, char **argv)
{
    CliParser cli("sensitivity_study",
                  "sweep a workload parameter across protocols");
    cli.addOption("param", "amod_private",
                  "parameter to sweep (see --list)");
    cli.addOption("from", "0.5", "first swept value");
    cli.addOption("to", "0.95", "last swept value");
    cli.addOption("steps", "10", "number of swept values");
    cli.addOption("protocols", "WriteOnce,Illinois,Berkeley,Dragon",
                  "comma-separated protocol names or mod strings");
    cli.addOption("n", "10", "number of processors");
    cli.addOption("sharing", "5", "sharing level in percent (1, 5, 20)");
    cli.addOption("csv", "", "also write results to this CSV file");
    cli.addFlag("list", "list sweepable parameters and exit");
    cli.parse(argc, argv);

    if (cli.getFlag("list")) {
        for (const auto &name : sweepableParams())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    SweepSpec spec;
    switch (cli.getInt("sharing")) {
      case 1:
        spec.base = presets::appendixA(SharingLevel::OnePercent);
        break;
      case 5:
        spec.base = presets::appendixA(SharingLevel::FivePercent);
        break;
      case 20:
        spec.base = presets::appendixA(SharingLevel::TwentyPercent);
        break;
      default:
        fatal("--sharing must be 1, 5, or 20");
    }

    spec.paramName = cli.get("param");
    spec.set = findParamSetter(spec.paramName);
    if (!spec.set)
        fatal("unknown parameter '%s' (use --list)",
              spec.paramName.c_str());

    double from = cli.getDouble("from");
    double to = cli.getDouble("to");
    long steps = cli.getInt("steps");
    if (steps < 2)
        fatal("--steps must be at least 2");
    for (long i = 0; i < steps; ++i) {
        spec.values.push_back(
            from + (to - from) * static_cast<double>(i) /
                static_cast<double>(steps - 1));
    }

    for (const auto &name : split(cli.get("protocols"), ',')) {
        auto cfg = findProtocol(name);
        if (!cfg)
            fatal("unknown protocol '%s'", name.c_str());
        spec.protocols.push_back(*cfg);
    }
    spec.n = static_cast<unsigned>(cli.getInt("n"));

    auto res = runSweep(spec);
    std::fputs(res.table().render().c_str(), stdout);

    // Report crossovers, if any.
    auto winners = res.winners();
    size_t first = winners.front();
    bool crossed = false;
    for (size_t v = 1; v < winners.size(); ++v) {
        if (winners[v] != first) {
            std::printf("\ncrossover: best protocol changes at %s = "
                        "%s\n", spec.paramName.c_str(),
                        formatCompact(spec.values[v], 4).c_str());
            crossed = true;
            break;
        }
    }
    if (!crossed) {
        auto names = namesForConfig(spec.protocols[first]);
        std::printf("\nno crossover: %s dominates the whole range\n",
                    names.empty() ? spec.protocols[first].name().c_str()
                                  : names.front().c_str());
    }

    std::string csv_path = cli.get("csv");
    if (!csv_path.empty()) {
        AtomicFile out(csv_path);
        if (!out.ok())
            fatal("cannot open '%s' for writing", csv_path.c_str());
        out.stream() << res.csv();
        if (auto ok = out.commit(); !ok)
            fatal("%s", ok.error().describe().c_str());
        std::printf("wrote %s\n", csv_path.c_str());
    }
    observeFinalize();
    return 0;
}
